// Model-facing graph encoding: per-relation CSR/SoA adjacency grouped by
// destination, ready for attention softmax over incoming edges.
//
// Each relation keeps a compact *local* numbering of the nodes it touches
// (`nodes`), and edge data lives in flat typed arrays (structure-of-arrays)
// rather than per-edge records: `src_local[e]` and `gate[e]` are contiguous,
// and a CSR offset table groups edges by destination. The RGAT layer
// projects only the rows a relation touches through W_r — most relations
// (ForExec, ConTrue, Ref, ...) touch a small fraction of the graph, so this
// cuts the per-layer matmul cost by roughly the relation's sparsity — and
// the SoA layout keeps the gather/softmax/scatter inner loops on dense
// 4-byte streams instead of 20-byte records.
//
// Because local indices are relation-private, two RelationEdges can be
// concatenated (with node/row/edge offsets) into a valid block-diagonal
// relation — the basis of model::GraphBatch's fused batch forward.
#pragma once

#include <cstdint>
#include <vector>

namespace pg::nn {

/// One (src, dst, gate) triple in *global* node ids — the construction-time
/// input to RelationEdges and the expansion product of to_edges(). The gate
/// is the message multiplier: 1 for unweighted relations; for ParaGraph
/// Child edges the MinMax-scaled execution-count weight.
struct RelEdge {
  std::uint32_t src = 0;  // global node id
  std::uint32_t dst = 0;  // global node id
  float gate = 1.0f;

  friend bool operator==(const RelEdge&, const RelEdge&) = default;
};

/// Edges of one relation in CSR/SoA form, grouped by destination:
/// edge slots [group_offsets[g], group_offsets[g+1]) all target local node
/// group_dst[g] (nodes[group_dst[g]] is the global id). src_local/gate are
/// parallel flat arrays over the same edge slots.
struct RelationEdges {
  std::vector<std::uint32_t> src_local;      // per edge: local source index
  std::vector<float> gate;                   // per edge: message multiplier
  std::vector<std::uint32_t> nodes;          // local -> global (sorted unique)
  std::vector<std::uint32_t> group_offsets;  // size = num_groups + 1
  std::vector<std::uint32_t> group_dst;      // local dst per group

  [[nodiscard]] std::size_t num_edges() const { return src_local.size(); }
  [[nodiscard]] std::size_t num_groups() const { return group_dst.size(); }
  [[nodiscard]] std::size_t num_active_nodes() const { return nodes.size(); }
  [[nodiscard]] bool empty() const { return src_local.empty(); }

  /// Builds the grouped/localised CSR form from (src, dst, gate) triples.
  /// Parallel (duplicate) edges and self-loops are kept as distinct slots.
  static RelationEdges from_edges(std::vector<RelEdge> edges);

  /// Expands back to global (src, dst, gate) triples in storage (grouped)
  /// order — the legacy array-of-structs view, for serialisation and tests.
  [[nodiscard]] std::vector<RelEdge> to_edges() const;
};

struct RelationalGraph {
  std::size_t num_nodes = 0;
  std::vector<RelationEdges> relations;

  [[nodiscard]] std::size_t num_edges() const {
    std::size_t total = 0;
    for (const auto& rel : relations) total += rel.num_edges();
    return total;
  }
};

}  // namespace pg::nn
