// Model-facing graph encoding: per-relation edge lists grouped by
// destination, ready for attention softmax over incoming edges.
//
// Each relation keeps a compact *local* numbering of the nodes it touches
// (`nodes`), and edges store local indices. The RGAT layer projects only
// those rows through W_r — most relations (ForExec, ConTrue, Ref, ...) touch
// a small fraction of the graph, so this cuts the per-layer matmul cost by
// roughly the relation's sparsity.
#pragma once

#include <cstdint>
#include <vector>

namespace pg::nn {

struct RelEdge {
  std::uint32_t src = 0;  // global node id
  std::uint32_t dst = 0;  // global node id
  std::uint32_t src_local = 0;
  std::uint32_t dst_local = 0;
  /// Message multiplier. 1 for unweighted relations; for ParaGraph Child
  /// edges this is the MinMax-scaled execution-count weight.
  float gate = 1.0f;
};

/// Edges of one relation, sorted by destination, with group offsets:
/// edges[group_offsets[g] .. group_offsets[g+1]) all target group_dst[g]
/// (a *local* index; nodes[group_dst[g]] is the global id).
struct RelationEdges {
  std::vector<RelEdge> edges;
  std::vector<std::uint32_t> nodes;          // sorted unique incident globals
  std::vector<std::uint32_t> group_offsets;  // size = num_groups + 1
  std::vector<std::uint32_t> group_dst;      // local dst per group

  [[nodiscard]] std::size_t num_groups() const { return group_dst.size(); }
  [[nodiscard]] std::size_t num_active_nodes() const { return nodes.size(); }
  [[nodiscard]] bool empty() const { return edges.empty(); }

  /// Builds the grouped/localised form from (src, dst, gate) triples.
  static RelationEdges from_edges(std::vector<RelEdge> edges);
};

struct RelationalGraph {
  std::size_t num_nodes = 0;
  std::vector<RelationEdges> relations;

  [[nodiscard]] std::size_t num_edges() const {
    std::size_t total = 0;
    for (const auto& rel : relations) total += rel.edges.size();
    return total;
  }
};

}  // namespace pg::nn
