// Incremental frame assembly for the nonblocking reactor: a state machine
// over the "PGSV" length-framed protocol (serve/protocol.hpp) that accepts
// whatever byte spans the kernel hands a readiness event — partial headers,
// partial payloads, or several pipelined frames in one span — and emits
// complete frames. The blocking read_exact loop the server used before the
// reactor parked a whole thread on each partial frame; this class holds the
// partial frame as ~40 bytes of state instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace pg::serve {

class FrameAssembler {
 public:
  struct Frame {
    FrameHeader header;
    std::string payload;
  };

  /// Feeds `n` bytes from the stream; appends every frame they complete to
  /// `out` (possibly several, possibly none). Returns true while the stream
  /// is healthy. Returns false when a header fails validation — bad magic,
  /// unsupported version, payload above the protocol cap — which is FATAL:
  /// the stream's framing can no longer be trusted, fatal_verdict()/
  /// fatal_header() describe the offender (frames completed earlier in the
  /// same span are still appended), and all further input is ignored.
  bool consume(const std::uint8_t* data, std::size_t n,
               std::vector<Frame>& out);

  [[nodiscard]] bool fatal() const { return fatal_; }
  [[nodiscard]] HeaderVerdict fatal_verdict() const { return verdict_; }
  /// On kBadVersion/kOversized the header fields (notably request_id) are
  /// trustworthy and may be echoed in the error reply; on kBadMagic they
  /// are not (decode stops at the magic) — mirror of decode_header.
  [[nodiscard]] const FrameHeader& fatal_header() const { return header_; }

  /// Bytes buffered toward a not-yet-complete frame (0 on a frame boundary).
  [[nodiscard]] std::size_t pending_bytes() const {
    return in_payload_ ? kFrameHeaderBytes + payload_got_ : header_got_;
  }

 private:
  std::uint8_t header_bytes_[kFrameHeaderBytes];
  std::size_t header_got_ = 0;
  FrameHeader header_;
  bool in_payload_ = false;
  std::string payload_;  // sized to header_.payload_bytes once known
  std::size_t payload_got_ = 0;
  bool fatal_ = false;
  HeaderVerdict verdict_ = HeaderVerdict::kOk;
};

}  // namespace pg::serve
