// Blocking reference client for the paragraph-serve protocol: one socket,
// synchronous request/reply. Used by the `paragraph-cli client` subcommand,
// the bench_serve_load generator, and the serve test suites.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "model/sample.hpp"
#include "serve/protocol.hpp"
#include "serve/socket.hpp"

namespace pg::serve {

/// One server reply, discriminated by `kind`:
///   kPredictReply -> `prediction` is valid
///   kErrorReply   -> `error` is valid
///   kBusyReply    -> backpressure: retry after a pause
///   kPongReply    -> ping answer
struct Response {
  FrameKind kind = FrameKind::kErrorReply;
  std::uint64_t request_id = 0;
  PredictReply prediction;
  ErrorReply error;
};

class Client {
 public:
  /// Connects to 127.0.0.1:`port`. recv_timeout_ms > 0 bounds every reply
  /// wait (a timeout surfaces as SocketError / a nullopt close).
  explicit Client(std::uint16_t port, int recv_timeout_ms = 0);

  /// Serialises a sample to the .psample wire bytes a predict request
  /// carries (io::write_sample — the on-disk format IS the wire format).
  [[nodiscard]] static std::string sample_bytes(
      const model::TrainingSample& sample);

  /// Sends one predict request over pre-serialised .psample bytes and waits
  /// for the reply. nullopt = the server closed the connection.
  std::optional<Response> predict_bytes(const std::string& psample);

  /// sample_bytes + predict_bytes.
  std::optional<Response> predict(const model::TrainingSample& sample);

  /// predict_bytes, retrying (with a short sleep) while the server answers
  /// kBusyReply. `busy_retries`, if given, counts the retries observed.
  std::optional<Response> predict_until_served(const std::string& psample,
                                               std::uint64_t* busy_retries =
                                                   nullptr);

  std::optional<Response> ping();

  /// Sends an arbitrary frame (tests craft hostile ones via raw sockets;
  /// this is for well-formed but unusual kinds) and waits for one reply.
  std::optional<Response> roundtrip(FrameKind kind, const void* payload,
                                    std::size_t payload_bytes);

  /// The underlying socket, for tests that need to mangle the stream.
  [[nodiscard]] Socket& socket() { return socket_; }

 private:
  std::optional<Response> read_response();

  Socket socket_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace pg::serve
