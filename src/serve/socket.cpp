// POSIX implementation of the loopback socket wrappers.
#include "serve/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

namespace pg::serve {
namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

bool Socket::read_exact(void* out, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(out);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r == 0) {
      if (got == 0) return false;  // clean end-of-stream between messages
      throw SocketError("connection closed mid-message");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Receive timeout: idle between messages reads as a clean
        // disconnect, a stall mid-message is an error.
        if (got == 0) return false;
        throw SocketError("receive timeout mid-message");
      }
      throw SocketError(errno_text("recv failed"));
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void Socket::discard_exact(std::uint64_t n) {
  std::array<std::uint8_t, 4096> scratch;
  while (n > 0) {
    const std::size_t chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(n, scratch.size()));
    if (!read_exact(scratch.data(), chunk))
      throw SocketError("connection closed mid-message");
    n -= chunk;
  }
}

void Socket::write_all(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw SocketError(errno_text("send failed"));
    }
    sent += static_cast<std::size_t>(w);
  }
}

void Socket::set_recv_timeout_ms(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0)
    throw SocketError(errno_text("setsockopt(SO_RCVTIMEO) failed"));
}

void Listener::listen(std::uint16_t port, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw SocketError(errno_text("socket failed"));

  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0)
    throw SocketError(errno_text("bind failed"));
  if (::listen(sock.fd(), backlog) != 0)
    throw SocketError(errno_text("listen failed"));

  socklen_t len = sizeof addr;
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw SocketError(errno_text("getsockname failed"));
  port_ = ntohs(addr.sin_port);
  socket_ = std::move(sock);
}

void Listener::close() {
  // shutdown(2) before close: on Linux, close() alone does NOT wake a
  // thread blocked in accept(2) on the same descriptor — the accept loop
  // would sleep forever and stop() would deadlock joining it. shutdown
  // forces every blocked accept to return with an error first.
  if (socket_.valid()) ::shutdown(socket_.fd(), SHUT_RDWR);
  socket_.close();
}

Socket Listener::accept() {
  const int fd = ::accept(socket_.fd(), nullptr, nullptr);
  return Socket(fd);  // invalid on failure; the caller checks
}

Socket connect_loopback(std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw SocketError(errno_text("socket failed"));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0)
    throw SocketError(errno_text("connect failed"));

  // Request/reply traffic is latency-bound; coalescing tiny frames behind
  // Nagle's algorithm would serialise the batching window on 40ms ACK delays.
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

}  // namespace pg::serve
