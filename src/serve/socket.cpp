// POSIX implementation of the loopback socket wrappers and the epoll/
// eventfd reactor primitives.
#include "serve/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

namespace pg::serve {
namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

bool Socket::read_exact(void* out, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(out);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r == 0) {
      if (got == 0) return false;  // clean end-of-stream between messages
      throw SocketError("connection closed mid-message");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Receive timeout: idle between messages reads as a clean
        // disconnect, a stall mid-message is an error.
        if (got == 0) return false;
        throw SocketError("receive timeout mid-message");
      }
      throw SocketError(errno_text("recv failed"));
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void Socket::discard_exact(std::uint64_t n) {
  std::array<std::uint8_t, 4096> scratch;
  while (n > 0) {
    const std::size_t chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(n, scratch.size()));
    if (!read_exact(scratch.data(), chunk))
      throw SocketError("connection closed mid-message");
    n -= chunk;
  }
}

void Socket::write_all(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw SocketError(errno_text("send failed"));
    }
    sent += static_cast<std::size_t>(w);
  }
}

void Socket::set_recv_timeout_ms(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0)
    throw SocketError(errno_text("setsockopt(SO_RCVTIMEO) failed"));
}

void Socket::set_nonblocking(bool on) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) throw SocketError(errno_text("fcntl(F_GETFL) failed"));
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd_, F_SETFL, want) != 0)
    throw SocketError(errno_text("fcntl(F_SETFL) failed"));
}

void Socket::set_nodelay(bool on) {
  const int v = on ? 1 : 0;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &v, sizeof v);
}

Socket::ReadResult Socket::read_some(void* out, std::size_t n) {
  while (true) {
    const ssize_t r = ::recv(fd_, out, n, 0);
    if (r > 0) return {ReadStatus::kData, static_cast<std::size_t>(r)};
    if (r == 0) return {ReadStatus::kEof, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return {ReadStatus::kWouldBlock, 0};
    throw SocketError(errno_text("recv failed"));
  }
}

std::size_t Socket::write_some(const struct iovec* iov, int iovcnt) {
  msghdr msg{};
  msg.msg_iov = const_cast<struct iovec*>(iov);
  msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
  while (true) {
    const ssize_t w = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (w >= 0) return static_cast<std::size_t>(w);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    throw SocketError(errno_text("sendmsg failed"));
  }
}

// --- EpollSet -------------------------------------------------------------

EpollSet::EpollSet() : fd_(::epoll_create1(EPOLL_CLOEXEC)) {
  if (fd_ < 0) throw SocketError(errno_text("epoll_create1 failed"));
}

EpollSet::~EpollSet() {
  if (fd_ >= 0) ::close(fd_);
}

EpollSet& EpollSet::operator=(EpollSet&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void EpollSet::add(int fd, std::uint32_t events, std::uint64_t tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  if (::epoll_ctl(fd_, EPOLL_CTL_ADD, fd, &ev) != 0)
    throw SocketError(errno_text("epoll_ctl(ADD) failed"));
}

void EpollSet::mod(int fd, std::uint32_t events, std::uint64_t tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  if (::epoll_ctl(fd_, EPOLL_CTL_MOD, fd, &ev) != 0 && errno != ENOENT &&
      errno != EBADF)
    throw SocketError(errno_text("epoll_ctl(MOD) failed"));
}

void EpollSet::del(int fd) {
  // ENOENT/EBADF: the fd was closed, which already removed it.
  ::epoll_ctl(fd_, EPOLL_CTL_DEL, fd, nullptr);
}

int EpollSet::wait(struct epoll_event* out, int max_events, int timeout_ms) {
  while (true) {
    const int n = ::epoll_wait(fd_, out, max_events, timeout_ms);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    throw SocketError(errno_text("epoll_wait failed"));
  }
}

// --- WakeFd ---------------------------------------------------------------

WakeFd::WakeFd() : fd_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {
  if (fd_ < 0) throw SocketError(errno_text("eventfd failed"));
}

WakeFd::~WakeFd() {
  if (fd_ >= 0) ::close(fd_);
}

WakeFd& WakeFd::operator=(WakeFd&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void WakeFd::signal() {
  const std::uint64_t one = 1;
  // EAGAIN = counter saturated = a wake is already pending: success.
  [[maybe_unused]] const ssize_t w = ::write(fd_, &one, sizeof one);
}

void WakeFd::drain() {
  std::uint64_t count = 0;
  [[maybe_unused]] const ssize_t r = ::read(fd_, &count, sizeof count);
}

// --- Listener -------------------------------------------------------------

void Listener::listen(std::uint16_t port, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw SocketError(errno_text("socket failed"));

  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0)
    throw SocketError(errno_text("bind failed"));
  if (::listen(sock.fd(), backlog) != 0)
    throw SocketError(errno_text("listen failed"));

  socklen_t len = sizeof addr;
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw SocketError(errno_text("getsockname failed"));
  port_ = ntohs(addr.sin_port);
  socket_ = std::move(sock);
}

void Listener::close() {
  // shutdown(2) before close: on Linux, close() alone does NOT wake a
  // thread blocked in accept(2) on the same descriptor — the accept loop
  // would sleep forever and stop() would deadlock joining it. shutdown
  // forces every blocked accept to return with an error first.
  if (socket_.valid()) ::shutdown(socket_.fd(), SHUT_RDWR);
  socket_.close();
}

Socket Listener::accept() {
  const int fd = ::accept(socket_.fd(), nullptr, nullptr);
  return Socket(fd);  // invalid on failure; the caller checks
}

Socket Listener::try_accept(int& err_out) {
  const int fd = ::accept4(socket_.fd(), nullptr, nullptr, SOCK_NONBLOCK);
  err_out = fd >= 0 ? 0 : errno;
  return Socket(fd);
}

void Listener::set_nonblocking(bool on) { socket_.set_nonblocking(on); }

Socket connect_loopback(std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw SocketError(errno_text("socket failed"));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0)
    throw SocketError(errno_text("connect failed"));

  // Request/reply traffic is latency-bound; coalescing tiny frames behind
  // Nagle's algorithm would serialise the batching window on 40ms ACK delays.
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

}  // namespace pg::serve
