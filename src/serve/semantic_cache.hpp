// Serve-time semantic prediction cache (docs/SERVING.md).
//
// One cache per Server, shared by every worker shard: an LRU of (pooled
// embedding, aux features, scaled prediction) entries. After a worker
// embeds its coalesced batch, each request probes the cache — a hit skips
// the FC head entirely and reuses the cached prediction; misses run
// through InferenceEngine::predict_head and are inserted.
//
// Match rule: the aux features must match *bitwise* always (they feed the
// head directly — a nearby embedding with different aux is a different
// prediction). The embedding match is governed by eps:
//   * eps == 0 — exact bitwise equality (memcmp). Because the head is a
//     deterministic function of (embedding, aux), a hit's cached value is
//     bit-for-bit what recomputation would produce, so replies stay
//     byte-identical to the uncached server (serve_test pins this).
//   * eps > 0  — the nearest cached entry within L2 distance eps reuses
//     its prediction: an approximation the operator opted into, traded for
//     skipping the head on near-duplicate traffic.
//
// Bytes fast path: entries also remember the request's wire bytes, and the
// reader probes lookup_bytes() *before* decoding. The whole forward pass is
// a deterministic function of the request bytes, so a byte-identical repeat
// can skip decode + embed + head and serve the stored prediction — replies
// identical to recomputation at any eps (a byte-equal request is within
// every match radius). This is where the cache's throughput win lives: the
// head is a sliver of the forward pass, the embed is almost all of it.
//
// Capacity is enforced by least-recently-*used* eviction (lookups refresh
// recency). All counters are monotonic and surfaced via ServerStats.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace pg::serve {

struct CacheConfig {
  bool enabled = false;       ///< default off: replies bitwise-unchanged
  double eps = 0.0;           ///< L2 match radius; 0 = exact bitwise match
  std::size_t capacity = 1024;  ///< max entries before LRU eviction
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

class SemanticCache {
 public:
  explicit SemanticCache(CacheConfig config) : config_(config) {}

  /// Bytes fast path: returns the cached prediction for a byte-identical
  /// request, refreshing recency. Counts a hit on success but never a miss
  /// — a miss here still reaches the embedding-space lookup, which does
  /// the counting, so each request is counted exactly once.
  std::optional<double> lookup_bytes(const std::string& request);

  /// Returns the cached scaled prediction for the nearest entry matching
  /// (embedding, aux) under the config's match rule, refreshing its
  /// recency; nullopt on miss. Counts a hit or a miss either way.
  std::optional<double> lookup(std::span<const float> embedding,
                               const std::array<float, 2>& aux);

  /// Inserts a (embedding, aux) -> scaled entry keyed additionally by the
  /// request's wire bytes, evicting the least recently used entry when at
  /// capacity.
  void insert(std::span<const float> embedding,
              const std::array<float, 2>& aux, double scaled,
              std::string request);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] const CacheConfig& config() const { return config_; }

 private:
  /// request bytes -> entry slot. The map owns its keys (node-based, so
  /// iterators stored in entries stay valid across rehash and unrelated
  /// erasure); entries hold an iterator back for O(1) unlink on eviction.
  using BytesMap = std::unordered_map<std::string, std::size_t>;

  struct Entry {
    std::vector<float> embedding;
    std::array<float, 2> aux{};
    double scaled = 0.0;
    std::uint64_t last_used = 0;
    BytesMap::iterator bytes_it{};
    bool has_bytes = false;
  };

  CacheConfig config_;
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  BytesMap by_bytes_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace pg::serve
