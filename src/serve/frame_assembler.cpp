// FrameAssembler implementation: accumulate header bytes, validate, then
// accumulate the payload; repeat across whatever span boundaries the
// kernel produced.
#include "serve/frame_assembler.hpp"

#include <algorithm>
#include <cstring>

namespace pg::serve {

bool FrameAssembler::consume(const std::uint8_t* data, std::size_t n,
                             std::vector<Frame>& out) {
  while (n > 0) {
    if (fatal_) return false;

    if (!in_payload_) {
      const std::size_t take =
          std::min(n, kFrameHeaderBytes - header_got_);
      std::memcpy(header_bytes_ + header_got_, data, take);
      header_got_ += take;
      data += take;
      n -= take;
      if (header_got_ < kFrameHeaderBytes) break;  // partial header

      verdict_ = decode_header(header_bytes_, header_);
      if (verdict_ != HeaderVerdict::kOk) {
        // Oversized lengths reject HERE, before any payload allocation — a
        // hostile 2^62-byte length never drives a 2^62-byte resize.
        fatal_ = true;
        return false;
      }
      if (header_.payload_bytes == 0) {
        out.push_back(Frame{header_, std::string()});
        header_got_ = 0;
        continue;
      }
      in_payload_ = true;
      payload_.resize(static_cast<std::size_t>(header_.payload_bytes));
      payload_got_ = 0;
    }

    const std::size_t take = std::min(
        n, static_cast<std::size_t>(header_.payload_bytes) - payload_got_);
    std::memcpy(payload_.data() + payload_got_, data, take);
    payload_got_ += take;
    data += take;
    n -= take;
    if (payload_got_ < header_.payload_bytes) break;  // partial payload

    out.push_back(Frame{header_, std::move(payload_)});
    payload_ = std::string();
    payload_got_ = 0;
    in_payload_ = false;
    header_got_ = 0;
  }
  return !fatal_;
}

}  // namespace pg::serve
