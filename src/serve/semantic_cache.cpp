#include "serve/semantic_cache.hpp"

#include <algorithm>
#include <cstring>

namespace pg::serve {
namespace {

/// Scalar squared L2 in index order — mirrors ann::l2_distance_sq, kept
/// local so pg_serve does not grow a pg_ann dependency for one loop.
double distance_sq(std::span<const float> a, std::span<const float> b) {
  double acc = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    const double d = static_cast<double>(a[j]) - static_cast<double>(b[j]);
    acc += d * d;
  }
  return acc;
}

bool aux_equal(const std::array<float, 2>& a, const std::array<float, 2>& b) {
  return std::memcmp(a.data(), b.data(), sizeof a) == 0;
}

}  // namespace

std::optional<double> SemanticCache::lookup_bytes(const std::string& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_bytes_.find(request);
  if (it == by_bytes_.end()) return std::nullopt;
  Entry& e = entries_[it->second];
  ++hits_;
  e.last_used = ++tick_;
  return e.scaled;
}

std::optional<double> SemanticCache::lookup(std::span<const float> embedding,
                                            const std::array<float, 2>& aux) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* best = nullptr;
  double best_dist = 0.0;
  for (Entry& e : entries_) {
    if (e.embedding.size() != embedding.size() || !aux_equal(e.aux, aux))
      continue;
    if (config_.eps == 0.0) {
      if (std::memcmp(e.embedding.data(), embedding.data(),
                      embedding.size() * sizeof(float)) != 0)
        continue;
      best = &e;
      break;  // bitwise matches are interchangeable; first wins
    }
    const double dist = distance_sq(e.embedding, embedding);
    if (dist <= config_.eps * config_.eps &&
        (best == nullptr || dist < best_dist)) {
      best = &e;
      best_dist = dist;
    }
  }
  if (best == nullptr) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  best->last_used = ++tick_;
  return best->scaled;
}

void SemanticCache::insert(std::span<const float> embedding,
                           const std::array<float, 2>& aux, double scaled,
                           std::string request) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (config_.capacity == 0) return;
  Entry* slot = nullptr;
  if (entries_.size() >= config_.capacity) {
    slot = &*std::min_element(entries_.begin(), entries_.end(),
                              [](const Entry& a, const Entry& b) {
                                return a.last_used < b.last_used;
                              });
    if (slot->has_bytes) by_bytes_.erase(slot->bytes_it);
    slot->has_bytes = false;
    ++evictions_;
  } else {
    slot = &entries_.emplace_back();
  }
  slot->embedding.assign(embedding.begin(), embedding.end());
  slot->aux = aux;
  slot->scaled = scaled;
  slot->last_used = ++tick_;
  if (!request.empty()) {
    const auto index = static_cast<std::size_t>(slot - entries_.data());
    const auto [it, inserted] =
        by_bytes_.try_emplace(std::move(request), index);
    if (!inserted) {
      // Two in-flight identical requests both missed: the key exists and
      // points at the earlier slot. Re-point it here and unlink the old
      // entry so no two entries ever share one map node.
      if (it->second != index) entries_[it->second].has_bytes = false;
      it->second = index;
    }
    slot->bytes_it = it;
    slot->has_bytes = true;
  }
}

CacheStats SemanticCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return CacheStats{hits_, misses_, evictions_};
}

}  // namespace pg::serve
