// Blocking serve client implementation.
#include "serve/client.hpp"

#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "io/pgraph_io.hpp"

namespace pg::serve {

Client::Client(std::uint16_t port, int recv_timeout_ms)
    : socket_(connect_loopback(port)) {
  if (recv_timeout_ms > 0) socket_.set_recv_timeout_ms(recv_timeout_ms);
}

std::string Client::sample_bytes(const model::TrainingSample& sample) {
  std::ostringstream os(std::ios::binary);
  io::write_sample(os, sample);
  return std::move(os).str();
}

std::optional<Response> Client::read_response() {
  std::uint8_t header_bytes[kFrameHeaderBytes];
  if (!socket_.read_exact(header_bytes, sizeof header_bytes))
    return std::nullopt;  // server closed the connection

  FrameHeader header;
  if (decode_header(header_bytes, header) != HeaderVerdict::kOk)
    throw SocketError("malformed reply frame from server");
  std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(header.payload_bytes));
  if (header.payload_bytes > 0 &&
      !socket_.read_exact(payload.data(), payload.size()))
    throw SocketError("connection closed mid-reply");

  Response response;
  response.kind = header.kind;
  response.request_id = header.request_id;
  switch (header.kind) {
    case FrameKind::kPredictReply: {
      const auto decoded =
          decode_predict_reply_payload(payload.data(), payload.size());
      if (!decoded) throw SocketError("malformed predict reply payload");
      response.prediction = *decoded;
      break;
    }
    case FrameKind::kErrorReply: {
      const auto decoded =
          decode_error_reply_payload(payload.data(), payload.size());
      if (!decoded) throw SocketError("malformed error reply payload");
      response.error = *decoded;
      break;
    }
    case FrameKind::kBusyReply:
    case FrameKind::kPongReply:
      break;
    default:
      throw SocketError("unexpected reply frame kind");
  }
  return response;
}

std::optional<Response> Client::roundtrip(FrameKind kind, const void* payload,
                                          std::size_t payload_bytes) {
  const auto frame =
      encode_frame(kind, next_request_id_++, payload, payload_bytes);
  socket_.write_all(frame.data(), frame.size());
  return read_response();
}

std::optional<Response> Client::predict_bytes(const std::string& psample) {
  return roundtrip(FrameKind::kPredictRequest, psample.data(), psample.size());
}

std::optional<Response> Client::predict(const model::TrainingSample& sample) {
  return predict_bytes(sample_bytes(sample));
}

std::optional<Response> Client::predict_until_served(
    const std::string& psample, std::uint64_t* busy_retries) {
  while (true) {
    auto response = predict_bytes(psample);
    if (!response || response->kind != FrameKind::kBusyReply) return response;
    if (busy_retries != nullptr) ++*busy_retries;
    // Brief pause: long enough for a batching window to drain, short enough
    // that retry storms in tests stay fast.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

std::optional<Response> Client::ping() {
  return roundtrip(FrameKind::kPing, nullptr, 0);
}

}  // namespace pg::serve
