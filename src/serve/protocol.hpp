// The paragraph-serve wire protocol: length-framed messages over a byte
// stream (loopback/TCP socket), built from the same explicit-little-endian
// pg::io primitives as the on-disk formats.
//
// Frame layout (both directions, all fields little-endian):
//
//   offset size field
//   0      4    magic "PGSV"
//   4      2    protocol version (kProtocolVersion)
//   6      2    frame kind (FrameKind)
//   8      8    request id — chosen by the client, echoed verbatim in every
//               reply so pipelined requests can be matched to their answers
//   16     8    payload length in bytes
//   24     ...  payload
//
// Request payloads:
//   kPredictRequest — one complete .psample container (the existing
//                     io::write_sample bytes; schema-hash checked on decode)
//   kPing           — empty
//
// Reply payloads:
//   kPredictReply   — f64 scaled prediction, f64 runtime in microseconds
//   kErrorReply     — u16 ErrorCode + u32-length-prefixed message string
//   kBusyReply      — empty (admission queue full; retry later)
//   kPongReply      — empty
//
// Error severity contract: a reply with code kMalformedFrame or kBadVersion
// means the server can no longer trust the stream's framing and closes the
// connection after sending it. kBadKind/kBadPayload/kShuttingDown/kInternal
// are per-request failures — the connection stays open and later requests
// are unaffected (per-request error isolation).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pg::serve {

inline constexpr std::uint8_t kFrameMagic[4] = {'P', 'G', 'S', 'V'};
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 24;

/// Upper bound on a frame payload. Far above any legitimate .psample in
/// this project, low enough that a corrupt/hostile length field fails
/// cleanly instead of driving a multi-gigabyte read or allocation.
inline constexpr std::uint64_t kMaxFramePayload = 64ull << 20;

enum class FrameKind : std::uint16_t {
  // Requests (client -> server).
  kPredictRequest = 0x0001,
  kPing = 0x0002,
  // Replies (server -> client); high bit set.
  kPredictReply = 0x0081,
  kErrorReply = 0x0082,
  kBusyReply = 0x0083,
  kPongReply = 0x0084,
};

enum class ErrorCode : std::uint16_t {
  kMalformedFrame = 1,  // bad magic or implausible length — fatal, disconnect
  kBadVersion = 2,      // protocol version mismatch — fatal, disconnect
  kBadKind = 3,         // unknown/unexpected frame kind — request-scoped
  kBadPayload = 4,      // payload failed to decode (io::FormatError text)
  kShuttingDown = 5,    // server is draining; no new work admitted
  kInternal = 6,        // prediction failed server-side
};

std::string_view frame_kind_name(FrameKind kind);
std::string_view error_code_name(ErrorCode code);

struct FrameHeader {
  std::uint16_t version = kProtocolVersion;
  FrameKind kind = FrameKind::kPing;
  std::uint64_t request_id = 0;
  std::uint64_t payload_bytes = 0;
};

/// Serialises a frame header into exactly kFrameHeaderBytes.
void encode_header(const FrameHeader& header, std::uint8_t out[kFrameHeaderBytes]);

/// Why a received header cannot be processed. kOk means fully valid;
/// kBadVersion/kOversized headers still carry trustworthy field values (the
/// caller may echo the request id in its error reply), kBadMagic ones do not.
enum class HeaderVerdict : std::uint8_t {
  kOk,
  kBadMagic,
  kBadVersion,
  kOversized,  // payload_bytes > kMaxFramePayload
};

/// Parses + validates a frame header from exactly kFrameHeaderBytes.
HeaderVerdict decode_header(const std::uint8_t bytes[kFrameHeaderBytes],
                            FrameHeader& out);

/// Header + payload concatenated into one buffer, ready to write.
std::vector<std::uint8_t> encode_frame(FrameKind kind, std::uint64_t request_id,
                                       const void* payload,
                                       std::size_t payload_bytes);

// --- typed payloads -------------------------------------------------------

struct PredictReply {
  double scaled = 0.0;      // model-domain prediction (bitwise-comparable)
  double runtime_us = 0.0;  // scaled mapped back through the target scaler
};

struct ErrorReply {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

std::vector<std::uint8_t> encode_predict_reply_payload(const PredictReply& reply);
std::vector<std::uint8_t> encode_error_reply_payload(const ErrorReply& reply);

/// Decoders return nullopt on malformed payload bytes (wrong size,
/// truncated string, ...) — never throw, never crash.
std::optional<PredictReply> decode_predict_reply_payload(
    const std::uint8_t* payload, std::size_t payload_bytes);
std::optional<ErrorReply> decode_error_reply_payload(const std::uint8_t* payload,
                                                     std::size_t payload_bytes);

}  // namespace pg::serve
