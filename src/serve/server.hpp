// paragraph-serve core: a resident prediction service over the frame
// protocol in serve/protocol.hpp.
//
// Request flow:
//
//   accept thread ──▶ one reader thread per connection
//        reader: read frame, decode the .psample payload (in parallel
//                across connections), try_push into the admission queue
//                — full queue => immediate kBusyReply (backpressure)
//   admission queue (bounded, FIFO)
//        worker threads: pop the first request, then keep collecting until
//                batch_max requests are in hand or batch_window_us has
//                elapsed since the first pop (the dynamic batching window),
//                run ONE InferenceEngine::predict_batch over the coalesced
//                graphs, write each reply back on its own connection.
//
// Each worker owns a private InferenceEngine shard (engine per-thread state
// is keyed by OpenMP thread ids, which std::threads share — sharding keeps
// the arenas disjoint). Because the fused engine is bitwise-identical to
// predict_one regardless of how graphs are coalesced, every reply is
// bitwise-equal to a single-threaded in-process prediction no matter how
// the batching window cut the traffic (tests/serve_test.cpp pins this).
//
// Shutdown (stop()): close the listener, shut the read side of every
// connection (readers drain out), let workers finish everything already
// admitted, then join all threads. One malformed frame never takes down
// the process: framing errors answer with kErrorReply and at worst close
// that one connection.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "model/checkpoint.hpp"
#include "model/engine.hpp"
#include "model/paragraph_model.hpp"
#include "model/sample.hpp"
#include "serve/protocol.hpp"
#include "serve/semantic_cache.hpp"
#include "serve/socket.hpp"

namespace pg::serve {

struct ServeConfig {
  std::uint16_t port = 0;  // 0 = kernel-chosen ephemeral; see Server::port()
  int backlog = 64;
  std::size_t queue_depth = 256;  // admission-queue bound (backpressure)
  std::size_t batch_max = 16;     // flush the batching window at N graphs...
  std::uint32_t batch_window_us = 200;  // ...or T microseconds, whichever first
  std::size_t workers = 1;        // InferenceEngine shards
  int idle_timeout_ms = 0;        // per-connection recv timeout; 0 = none
  // Semantic prediction cache (serve/semantic_cache.hpp). Off by default so
  // replies stay bitwise-identical to predict_one; cache_eps = 0 means only
  // bitwise-equal (embedding, aux) pairs hit — still byte-identical replies.
  bool cache = false;
  double cache_eps = 0.0;
  std::size_t cache_capacity = 1024;
};

/// Env-knob layer (documented in docs/SERVING.md): PARAGRAPH_SERVE_PORT,
/// _WORKERS, _QUEUE, _BATCH, _WINDOW_US, _IDLE_TIMEOUT_MS, _CACHE,
/// _CACHE_EPS, _CACHE_CAP override the defaults; out-of-range values are
/// clamped to sane bounds.
ServeConfig serve_config_from_env(ServeConfig base = {});

/// Monotonic counters; safe to read while the server runs.
struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t requests_ok = 0;      // predict requests answered
  std::uint64_t requests_error = 0;   // error replies sent
  std::uint64_t busy_rejected = 0;    // kBusyReply backpressure responses
  std::uint64_t batches = 0;          // fused predict_batch calls
  std::uint64_t pings = 0;
  // Scheduler counters aggregated over every worker's engine shard (the
  // per-batch deltas of model::ScheduleStats): fused chunks dispatched,
  // node rows packed, and chunks run under intra-batch parallelism.
  std::uint64_t sched_chunks = 0;
  std::uint64_t sched_rows = 0;
  std::uint64_t sched_intra_chunks = 0;
  // Semantic-cache counters (all zero when the cache is disabled).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
};

class Server {
 public:
  /// The model must stay alive (and unmodified) for the server's lifetime;
  /// scalers are copied. Construction does not open any socket.
  Server(const model::ParaGraphModel& model,
         const model::CheckpointScalers& scalers, ServeConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens and spawns the accept/worker threads.
  void start();

  /// Graceful shutdown: stop accepting, drain the admission queue, join all
  /// threads. Idempotent; also run by the destructor.
  void stop();

  /// The actual bound port (after start(); resolves config port 0).
  [[nodiscard]] std::uint16_t port() const { return listener_.bound_port(); }

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const ServeConfig& config() const { return config_; }

 private:
  struct Connection {
    Socket socket;
    std::mutex write_mutex;  // replies interleave from workers + reader
  };
  using ConnectionPtr = std::shared_ptr<Connection>;

  struct Pending {
    ConnectionPtr conn;
    std::uint64_t request_id = 0;
    model::EncodedGraph graph;
    std::array<float, 2> aux{};
    std::string bytes;  // wire payload, kept (cache on) to key insertions
  };

  void accept_loop();
  void reader_loop(const ConnectionPtr& conn);
  /// One protocol frame: returns false when the connection should close.
  bool serve_frame(const ConnectionPtr& conn);
  void worker_loop(std::size_t worker_index);

  void send_frame(const ConnectionPtr& conn, FrameKind kind,
                  std::uint64_t request_id, const void* payload,
                  std::size_t payload_bytes);
  void send_error(const ConnectionPtr& conn, std::uint64_t request_id,
                  ErrorCode code, const std::string& message);

  bool try_enqueue(Pending&& pending);
  /// Pops a coalesced batch honouring batch_max/batch_window_us. Empty
  /// result means the server is draining and fully drained.
  std::vector<Pending> pop_batch();

  const model::ParaGraphModel* model_;
  model::SampleSet scaler_set_;  // from_target() for microsecond replies
  ServeConfig config_;
  std::unique_ptr<SemanticCache> cache_;  // null when config_.cache is off

  Listener listener_;
  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;

  std::mutex conn_mutex_;
  std::vector<ConnectionPtr> connections_;
  std::vector<std::thread> reader_threads_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};

  // Stats counters (relaxed; read via stats()).
  std::atomic<std::uint64_t> stat_connections_{0};
  std::atomic<std::uint64_t> stat_requests_ok_{0};
  std::atomic<std::uint64_t> stat_requests_error_{0};
  std::atomic<std::uint64_t> stat_busy_{0};
  std::atomic<std::uint64_t> stat_batches_{0};
  std::atomic<std::uint64_t> stat_pings_{0};
  std::atomic<std::uint64_t> stat_sched_chunks_{0};
  std::atomic<std::uint64_t> stat_sched_rows_{0};
  std::atomic<std::uint64_t> stat_sched_intra_{0};
};

}  // namespace pg::serve
