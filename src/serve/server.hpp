// paragraph-serve core: a resident prediction service over the frame
// protocol in serve/protocol.hpp.
//
// Request flow (event-driven reactor — no thread ever belongs to one
// connection):
//
//   io threads (PARAGRAPH_SERVE_IO_THREADS, default min(4, cores)), each
//   running nonblocking sockets behind its own epoll_wait:
//        accept:  io thread 0 owns the (nonblocking) listener; accepted
//                 connections are assigned round-robin across io threads
//        read:    readiness events feed a per-connection FrameAssembler —
//                 partial headers/payloads accumulate as ~bytes of state
//                 instead of parking a blocked thread; complete predict
//                 frames decode and try_push into the admission queue
//                 (full queue => immediate kBusyReply backpressure)
//        write:   replies append to a bounded per-connection write queue;
//                 the owning io thread drains it with ONE gathered
//                 sendmsg per readiness window, so replies completing in
//                 the same batching window coalesce into one syscall
//        gate:    a connection whose admitted-but-unanswered requests
//                 exceed conn_inflight_cap, or whose queued reply bytes
//                 exceed write_queue_cap (a peer that never reads), stops
//                 being polled for reads until it drains (level-triggered
//                 backpressure — bytes wait in the kernel buffer)
//        timers:  idle connections past idle_timeout_ms are closed by the
//                 reactor's timer pass (no per-socket SO_RCVTIMEO)
//   admission queue (bounded, FIFO)
//        worker threads: pop the first request, then keep collecting until
//                batch_max requests are in hand or batch_window_us has
//                elapsed since the first pop (the dynamic batching window),
//                run ONE InferenceEngine::predict_batch over the coalesced
//                graphs, queue each reply back on its own connection.
//
// Each worker owns a private InferenceEngine shard (engine per-thread state
// is keyed by OpenMP thread ids, which std::threads share — sharding keeps
// the arenas disjoint). Because the fused engine is bitwise-identical to
// predict_one regardless of how graphs are coalesced, every reply is
// bitwise-equal to a single-threaded in-process prediction no matter how
// the batching window cut the traffic (tests/serve_test.cpp pins this).
// Reply write coalescing moves bytes, never values: frames are concatenated
// verbatim, so the wire bytes are identical to one write_all per frame.
//
// The daemon's thread count is FIXED at io_threads + workers regardless of
// connection count — thousands of mostly-idle connections cost a few
// hundred bytes of state each, not a blocked reader thread each
// (tests/serve_concurrency_test.cpp pins the thread ceiling under 512 idle
// + 32 active connections).
//
// Shutdown (stop()): close the listener; io threads stop admitting (late
// predict frames answer kShuttingDown); workers drain everything already
// admitted; any request admitted in the shutdown race still gets a
// kShuttingDown reply; io threads flush every queued reply (bounded drain
// deadline for peers that stopped reading), then close all sockets. One
// malformed frame never takes down the process: framing errors answer with
// kErrorReply and at worst close that one connection.
#pragma once

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "model/checkpoint.hpp"
#include "model/engine.hpp"
#include "model/paragraph_model.hpp"
#include "model/sample.hpp"
#include "serve/frame_assembler.hpp"
#include "serve/protocol.hpp"
#include "serve/semantic_cache.hpp"
#include "serve/socket.hpp"

namespace pg::serve {

struct ServeConfig {
  std::uint16_t port = 0;  // 0 = kernel-chosen ephemeral; see Server::port()
  int backlog = 64;
  std::size_t queue_depth = 256;  // admission-queue bound (backpressure)
  std::size_t batch_max = 16;     // flush the batching window at N graphs...
  std::uint32_t batch_window_us = 200;  // ...or T microseconds, whichever first
  std::size_t workers = 1;        // InferenceEngine shards
  std::size_t io_threads = 0;     // reactor threads; 0 = min(4, cores)
  // Per-connection read-gating caps (level-triggered backpressure): stop
  // polling a connection for reads while it has this many admitted-but-
  // unanswered requests, or this many queued-but-unwritten reply bytes.
  std::size_t conn_inflight_cap = 64;
  std::size_t write_queue_cap = 1 << 20;  // bytes
  int idle_timeout_ms = 0;  // reactor-timer idle close; 0 = never
  // Semantic prediction cache (serve/semantic_cache.hpp). Off by default so
  // replies stay bitwise-identical to predict_one; cache_eps = 0 means only
  // bitwise-equal (embedding, aux) pairs hit — still byte-identical replies.
  bool cache = false;
  double cache_eps = 0.0;
  std::size_t cache_capacity = 1024;
};

/// Env-knob layer (documented in docs/SERVING.md): PARAGRAPH_SERVE_PORT,
/// _WORKERS, _IO_THREADS, _QUEUE, _BATCH, _WINDOW_US, _IDLE_TIMEOUT_MS,
/// _CONN_INFLIGHT, _WRITEQ_CAP, _CACHE, _CACHE_EPS, _CACHE_CAP override the
/// defaults; out-of-range values are clamped to sane bounds.
ServeConfig serve_config_from_env(ServeConfig base = {});

/// Monotonic counters; safe to read while the server runs.
struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t requests_ok = 0;      // predict requests answered
  std::uint64_t requests_error = 0;   // error replies sent
  std::uint64_t busy_rejected = 0;    // kBusyReply backpressure responses
  std::uint64_t batches = 0;          // fused predict_batch calls
  std::uint64_t pings = 0;
  // Reactor counters. reply_frames / writev_calls is the write-coalescing
  // ratio: frames that left in the same gathered sendmsg as a neighbour.
  std::uint64_t accepts_dropped = 0;  // accept failures (EMFILE, ...) backed off
  std::uint64_t idle_closed = 0;      // connections reaped by the idle timer
  std::uint64_t read_gated = 0;       // times a connection's reads were paused
  std::uint64_t writev_calls = 0;     // gathered reply-flush syscalls
  std::uint64_t reply_frames = 0;     // reply frames fully written
  // Scheduler counters aggregated over every worker's engine shard (the
  // per-batch deltas of model::ScheduleStats): fused chunks dispatched,
  // node rows packed, and chunks run under intra-batch parallelism.
  std::uint64_t sched_chunks = 0;
  std::uint64_t sched_rows = 0;
  std::uint64_t sched_intra_chunks = 0;
  // Semantic-cache counters (all zero when the cache is disabled).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
};

class Server {
 public:
  /// The model must stay alive (and unmodified) for the server's lifetime;
  /// scalers are copied. Construction does not open any socket.
  Server(const model::ParaGraphModel& model,
         const model::CheckpointScalers& scalers, ServeConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens and spawns the io/worker threads.
  void start();

  /// Graceful shutdown: stop accepting, drain the admission queue, flush
  /// every queued reply, join all threads. Idempotent; also run by the
  /// destructor.
  void stop();

  /// The actual bound port (after start(); resolves config port 0).
  [[nodiscard]] std::uint16_t port() const { return listener_.bound_port(); }

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const ServeConfig& config() const { return config_; }
  /// Reactor threads actually spawned (resolves config io_threads = 0).
  [[nodiscard]] std::size_t io_thread_count() const {
    return io_threads_.size();
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Connection {
    Socket socket;
    std::size_t io_index = 0;  // owning io thread

    // Read-side state: touched ONLY by the owning io thread.
    FrameAssembler assembler;
    Clock::time_point last_activity{};
    bool read_closed = false;     // peer EOF or fatal framing error
    bool read_gated = false;      // backpressure pause currently engaged
    std::uint32_t armed_events = 0;  // events currently registered in epoll

    // Admitted-but-unanswered requests (read by the io thread's gate, also
    // the "still owed a reply" count that delays the final close).
    std::atomic<std::uint32_t> inflight{0};

    // Write queue: workers append under write_mutex, the owning io thread
    // drains with gathered writes. One deque entry == one reply frame.
    std::mutex write_mutex;
    std::deque<std::vector<std::uint8_t>> write_queue;
    std::size_t write_head_offset = 0;  // bytes of the front frame written
    std::atomic<std::size_t> write_queue_bytes{0};
    bool closed = false;  // fd gone — drop any further replies
    bool dirty = false;   // already queued on the io thread's dirty list
  };
  using ConnectionPtr = std::shared_ptr<Connection>;

  struct IoThread {
    EpollSet epoll;
    WakeFd wake;
    std::thread thread;
    std::mutex mutex;  // guards incoming + dirty (handoff from other threads)
    std::vector<ConnectionPtr> incoming;
    std::vector<ConnectionPtr> dirty;
    // Owning connection table, io thread only. Keyed by fd (the epoll tag).
    std::unordered_map<int, ConnectionPtr> conns;
    std::vector<std::uint8_t> read_buf;  // per-thread read scratch
  };

  struct Pending {
    ConnectionPtr conn;
    std::uint64_t request_id = 0;
    model::EncodedGraph graph;
    std::array<float, 2> aux{};
    std::string bytes;  // wire payload, kept (cache on) to key insertions
  };

  // Reactor (io threads).
  void io_loop(std::size_t index);
  void adopt_incoming(IoThread& io);
  void process_dirty(IoThread& io);
  void handle_accept(IoThread& io);
  void handle_readable(IoThread& io, const ConnectionPtr& conn);
  void process_frame(const ConnectionPtr& conn, FrameAssembler::Frame&& frame);
  void reap_idle(IoThread& io);
  /// Drains the write queue with gathered writes, then re-arms epoll
  /// interest (EPOLLOUT while bytes remain, EPOLLIN unless gated/closed)
  /// and closes the connection once it is fully finished. The single
  /// point where epoll interest changes — io thread only.
  void flush_and_update(IoThread& io, const ConnectionPtr& conn);
  void close_connection(IoThread& io, const ConnectionPtr& conn);
  [[nodiscard]] bool read_gate_engaged(const Connection& conn) const;

  // Replies (any thread): append to the write queue and wake the owner.
  // `completes` marks the final answer to an admitted request — the
  // inflight count-down happens inside enqueue_reply, under write_mutex,
  // so the close check can never race it.
  void send_frame(const ConnectionPtr& conn, FrameKind kind,
                  std::uint64_t request_id, const void* payload,
                  std::size_t payload_bytes, bool completes = false);
  void send_error(const ConnectionPtr& conn, std::uint64_t request_id,
                  ErrorCode code, const std::string& message,
                  bool completes = false);
  void enqueue_reply(const ConnectionPtr& conn,
                     std::vector<std::uint8_t>&& frame, bool completes);

  enum class Enqueue { kOk, kBusy, kShuttingDown };
  Enqueue try_enqueue(Pending&& pending);
  /// Pops a coalesced batch honouring batch_max/batch_window_us. Empty
  /// result means the server is draining and fully drained.
  std::vector<Pending> pop_batch();
  void worker_loop(std::size_t worker_index);

  const model::ParaGraphModel* model_;
  model::SampleSet scaler_set_;  // from_target() for microsecond replies
  ServeConfig config_;
  std::unique_ptr<SemanticCache> cache_;  // null when config_.cache is off

  Listener listener_;
  std::vector<std::unique_ptr<IoThread>> io_threads_;
  std::size_t next_io_ = 0;  // round-robin assignment (io thread 0 only)
  Clock::time_point accept_cooldown_until_{};  // io thread 0 only
  std::vector<std::thread> worker_threads_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};  // final reply flush in progress
  std::atomic<bool> stopped_{false};
  Clock::time_point drain_deadline_{};

  // Stats counters (relaxed; read via stats()).
  std::atomic<std::uint64_t> stat_connections_{0};
  std::atomic<std::uint64_t> stat_requests_ok_{0};
  std::atomic<std::uint64_t> stat_requests_error_{0};
  std::atomic<std::uint64_t> stat_busy_{0};
  std::atomic<std::uint64_t> stat_batches_{0};
  std::atomic<std::uint64_t> stat_pings_{0};
  std::atomic<std::uint64_t> stat_accepts_dropped_{0};
  std::atomic<std::uint64_t> stat_idle_closed_{0};
  std::atomic<std::uint64_t> stat_read_gated_{0};
  std::atomic<std::uint64_t> stat_writev_calls_{0};
  std::atomic<std::uint64_t> stat_reply_frames_{0};
  std::atomic<std::uint64_t> stat_sched_chunks_{0};
  std::atomic<std::uint64_t> stat_sched_rows_{0};
  std::atomic<std::uint64_t> stat_sched_intra_{0};
};

}  // namespace pg::serve
