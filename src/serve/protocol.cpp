// Frame header/payload codecs for the serve protocol. Byte order is
// assembled with the pg::io little-endian primitives over an in-memory
// sink/source, so the wire format shares one endianness implementation with
// the on-disk containers.
#include "serve/protocol.hpp"

#include <cstring>
#include <sstream>

#include "io/binary.hpp"

namespace pg::serve {
namespace {

/// Sink writing into a caller-provided byte vector (appends). resize+memcpy
/// instead of insert(end, p, p+n): range-insert of tiny constant spans trips
/// a GCC 12 -Wstringop-overflow false positive under -O2.
struct VectorSink {
  std::vector<std::uint8_t>& out;
  void bytes(const void* data, std::size_t n) {
    const std::size_t old_size = out.size();
    out.resize(old_size + n);
    std::memcpy(out.data() + old_size, data, n);
  }
};

}  // namespace

std::string_view frame_kind_name(FrameKind kind) {
  switch (kind) {
    case FrameKind::kPredictRequest: return "predict-request";
    case FrameKind::kPing: return "ping";
    case FrameKind::kPredictReply: return "predict-reply";
    case FrameKind::kErrorReply: return "error-reply";
    case FrameKind::kBusyReply: return "busy-reply";
    case FrameKind::kPongReply: return "pong-reply";
  }
  return "unknown";
}

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kMalformedFrame: return "malformed-frame";
    case ErrorCode::kBadVersion: return "bad-version";
    case ErrorCode::kBadKind: return "bad-kind";
    case ErrorCode::kBadPayload: return "bad-payload";
    case ErrorCode::kShuttingDown: return "shutting-down";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

void encode_header(const FrameHeader& header,
                   std::uint8_t out[kFrameHeaderBytes]) {
  std::vector<std::uint8_t> buffer;
  buffer.reserve(kFrameHeaderBytes);
  VectorSink sink{buffer};
  sink.bytes(kFrameMagic, sizeof kFrameMagic);
  io::put_u16(sink, header.version);
  io::put_u16(sink, static_cast<std::uint16_t>(header.kind));
  io::put_u64(sink, header.request_id);
  io::put_u64(sink, header.payload_bytes);
  std::memcpy(out, buffer.data(), kFrameHeaderBytes);
}

HeaderVerdict decode_header(const std::uint8_t bytes[kFrameHeaderBytes],
                            FrameHeader& out) {
  if (std::memcmp(bytes, kFrameMagic, sizeof kFrameMagic) != 0)
    return HeaderVerdict::kBadMagic;
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(bytes) + sizeof kFrameMagic,
                  kFrameHeaderBytes - sizeof kFrameMagic));
  io::Source src(is);
  out.version = io::get_u16(src);
  out.kind = static_cast<FrameKind>(io::get_u16(src));
  out.request_id = io::get_u64(src);
  out.payload_bytes = io::get_u64(src);
  if (out.version != kProtocolVersion) return HeaderVerdict::kBadVersion;
  if (out.payload_bytes > kMaxFramePayload) return HeaderVerdict::kOversized;
  return HeaderVerdict::kOk;
}

std::vector<std::uint8_t> encode_frame(FrameKind kind, std::uint64_t request_id,
                                       const void* payload,
                                       std::size_t payload_bytes) {
  FrameHeader header;
  header.kind = kind;
  header.request_id = request_id;
  header.payload_bytes = payload_bytes;
  std::vector<std::uint8_t> frame(kFrameHeaderBytes + payload_bytes);
  encode_header(header, frame.data());
  if (payload_bytes > 0)
    std::memcpy(frame.data() + kFrameHeaderBytes, payload, payload_bytes);
  return frame;
}

std::vector<std::uint8_t> encode_predict_reply_payload(
    const PredictReply& reply) {
  std::vector<std::uint8_t> out;
  out.reserve(16);
  VectorSink sink{out};
  io::put_f64(sink, reply.scaled);
  io::put_f64(sink, reply.runtime_us);
  return out;
}

std::vector<std::uint8_t> encode_error_reply_payload(const ErrorReply& reply) {
  std::vector<std::uint8_t> out;
  out.reserve(2 + 4 + reply.message.size());
  VectorSink sink{out};
  io::put_u16(sink, static_cast<std::uint16_t>(reply.code));
  io::put_string(sink, reply.message);
  return out;
}

std::optional<PredictReply> decode_predict_reply_payload(
    const std::uint8_t* payload, std::size_t payload_bytes) {
  if (payload_bytes != 16) return std::nullopt;
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(payload), payload_bytes));
  io::Source src(is);
  PredictReply reply;
  reply.scaled = io::get_f64(src);
  reply.runtime_us = io::get_f64(src);
  return reply;
}

std::optional<ErrorReply> decode_error_reply_payload(
    const std::uint8_t* payload, std::size_t payload_bytes) {
  if (payload_bytes < 6 || payload_bytes > kMaxFramePayload)
    return std::nullopt;
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(payload), payload_bytes));
  io::Source src(is);
  ErrorReply reply;
  try {
    src.push_budget(payload_bytes);
    reply.code = static_cast<ErrorCode>(io::get_u16(src));
    reply.message = io::get_string(src);
    src.pop_budget();
  } catch (const io::FormatError&) {
    return std::nullopt;
  }
  return reply;
}

}  // namespace pg::serve
