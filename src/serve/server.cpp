// Server implementation: an epoll reactor (fixed pool of io threads driving
// nonblocking sockets) feeding a bounded admission queue, worker threads
// coalescing requests through the dynamic batching window into fused
// InferenceEngine batches, replies draining back through per-connection
// write queues with gathered (single-syscall) flushes.
#include "serve/server.hpp"

#include <sys/epoll.h>
#include <sys/uio.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include "io/pgraph_io.hpp"
#include "support/env.hpp"

namespace pg::serve {
namespace {

std::int64_t clamped_env(const char* name, std::int64_t fallback,
                         std::int64_t lo, std::int64_t hi) {
  return std::clamp(env_int(name, fallback), lo, hi);
}

// Epoll tags: connections are tagged with their own fd (always a small
// non-negative number), so the top of the u64 range is free for sentinels.
constexpr std::uint64_t kTagWake = ~std::uint64_t{0};
constexpr std::uint64_t kTagListener = ~std::uint64_t{0} - 1;

// Gathered-write fan-in per sendmsg. 64 frames per syscall is far past the
// coalescing knee; IOV_MAX (1024) would only grow the stack frame.
constexpr int kMaxFlushIov = 64;

// Backoff after a persistent accept failure (EMFILE/ENFILE/ENOMEM): the
// listener stays ready under level-triggered epoll, so without a cooldown
// the reactor would hot-spin on accept4 until an fd freed up.
constexpr auto kAcceptCooldown = std::chrono::milliseconds(10);

}  // namespace

ServeConfig serve_config_from_env(ServeConfig base) {
  base.port = static_cast<std::uint16_t>(
      clamped_env("PARAGRAPH_SERVE_PORT", base.port, 0, 65535));
  base.workers = static_cast<std::size_t>(clamped_env(
      "PARAGRAPH_SERVE_WORKERS", static_cast<std::int64_t>(base.workers), 1, 256));
  base.io_threads = static_cast<std::size_t>(
      clamped_env("PARAGRAPH_SERVE_IO_THREADS",
                  static_cast<std::int64_t>(base.io_threads), 0, 64));
  base.queue_depth = static_cast<std::size_t>(
      clamped_env("PARAGRAPH_SERVE_QUEUE",
                  static_cast<std::int64_t>(base.queue_depth), 1, 1 << 20));
  base.batch_max = static_cast<std::size_t>(
      clamped_env("PARAGRAPH_SERVE_BATCH",
                  static_cast<std::int64_t>(base.batch_max), 1,
                  static_cast<std::int64_t>(kMaxChunkSize)));
  base.batch_window_us = static_cast<std::uint32_t>(
      clamped_env("PARAGRAPH_SERVE_WINDOW_US", base.batch_window_us, 0,
                  10'000'000));
  base.conn_inflight_cap = static_cast<std::size_t>(
      clamped_env("PARAGRAPH_SERVE_CONN_INFLIGHT",
                  static_cast<std::int64_t>(base.conn_inflight_cap), 1,
                  1 << 16));
  base.write_queue_cap = static_cast<std::size_t>(
      clamped_env("PARAGRAPH_SERVE_WRITEQ_CAP",
                  static_cast<std::int64_t>(base.write_queue_cap), 4096,
                  std::int64_t{1} << 30));
  base.idle_timeout_ms = static_cast<int>(clamped_env(
      "PARAGRAPH_SERVE_IDLE_TIMEOUT_MS", base.idle_timeout_ms, 0, 3'600'000));
  base.cache =
      clamped_env("PARAGRAPH_SERVE_CACHE", base.cache ? 1 : 0, 0, 1) != 0;
  base.cache_eps = std::max(
      0.0, env_double("PARAGRAPH_SERVE_CACHE_EPS", base.cache_eps));
  base.cache_capacity = static_cast<std::size_t>(
      clamped_env("PARAGRAPH_SERVE_CACHE_CAP",
                  static_cast<std::int64_t>(base.cache_capacity), 1, 1 << 20));
  return base;
}

Server::Server(const model::ParaGraphModel& model,
               const model::CheckpointScalers& scalers, ServeConfig config)
    : model_(&model), config_(config) {
  scalers.apply_to(scaler_set_);
  if (config_.cache)
    cache_ = std::make_unique<SemanticCache>(
        CacheConfig{true, config_.cache_eps, config_.cache_capacity});
}

Server::~Server() { stop(); }

void Server::start() {
  if (started_.exchange(true)) return;
  listener_.listen(config_.port, config_.backlog);
  listener_.set_nonblocking(true);

  std::size_t nio = config_.io_threads;
  if (nio == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    nio = std::min<std::size_t>(4, hc == 0 ? 1 : hc);
  }
  io_threads_.reserve(nio);
  for (std::size_t i = 0; i < nio; ++i) {
    auto io = std::make_unique<IoThread>();
    io->read_buf.resize(64 * 1024);
    io->epoll.add(io->wake.fd(), EPOLLIN, kTagWake);
    io_threads_.push_back(std::move(io));
  }
  // io thread 0 owns the (nonblocking) listener; accepted connections are
  // dealt round-robin across the pool.
  io_threads_[0]->epoll.add(listener_.fd(), EPOLLIN, kTagListener);
  for (std::size_t i = 0; i < nio; ++i)
    io_threads_[i]->thread = std::thread([this, i] { io_loop(i); });

  worker_threads_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w)
    worker_threads_.emplace_back([this, w] { worker_loop(w); });
}

void Server::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  stopping_.store(true);

  // 1. No new connections: the closed listener fd drops out of io thread
  //    0's epoll on its own, and handle_accept is gated on stopping_.
  listener_.close();

  // 2. Drain: workers finish everything admitted, then exit on the empty
  //    queue (pop_batch returns empty once stopping_ && queue empty). The
  //    io threads keep running meanwhile — late predict frames answer
  //    kShuttingDown (try_enqueue refuses under stopping_).
  queue_cv_.notify_all();
  for (std::thread& t : worker_threads_)
    if (t.joinable()) t.join();

  // 3. Any request admitted in the shutdown race after its worker exited
  //    still gets an answer — the drain contract is "every admitted request
  //    is replied to", even if the reply is shutting-down. stopping_ is
  //    visible to every try_enqueue that wins queue_mutex_ from here on,
  //    so the queue stays empty for good.
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    while (!queue_.empty()) {
      Pending pending = std::move(queue_.front());
      queue_.pop_front();
      send_error(pending.conn, pending.request_id, ErrorCode::kShuttingDown,
                 "server shutting down", /*completes=*/true);
    }
  }

  // 4. Final flush: io threads push every queued reply byte out (bounded by
  //    a deadline so a peer that stopped reading cannot wedge shutdown),
  //    close all sockets, and exit.
  drain_deadline_ = Clock::now() + std::chrono::seconds(2);
  draining_.store(true);
  for (auto& io : io_threads_) io->wake.signal();
  for (auto& io : io_threads_)
    if (io->thread.joinable()) io->thread.join();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections = stat_connections_.load(std::memory_order_relaxed);
  s.requests_ok = stat_requests_ok_.load(std::memory_order_relaxed);
  s.requests_error = stat_requests_error_.load(std::memory_order_relaxed);
  s.busy_rejected = stat_busy_.load(std::memory_order_relaxed);
  s.batches = stat_batches_.load(std::memory_order_relaxed);
  s.pings = stat_pings_.load(std::memory_order_relaxed);
  s.accepts_dropped = stat_accepts_dropped_.load(std::memory_order_relaxed);
  s.idle_closed = stat_idle_closed_.load(std::memory_order_relaxed);
  s.read_gated = stat_read_gated_.load(std::memory_order_relaxed);
  s.writev_calls = stat_writev_calls_.load(std::memory_order_relaxed);
  s.reply_frames = stat_reply_frames_.load(std::memory_order_relaxed);
  s.sched_chunks = stat_sched_chunks_.load(std::memory_order_relaxed);
  s.sched_rows = stat_sched_rows_.load(std::memory_order_relaxed);
  s.sched_intra_chunks = stat_sched_intra_.load(std::memory_order_relaxed);
  if (cache_) {
    const CacheStats cs = cache_->stats();
    s.cache_hits = cs.hits;
    s.cache_misses = cs.misses;
    s.cache_evictions = cs.evictions;
  }
  return s;
}

// --- reactor --------------------------------------------------------------

void Server::io_loop(std::size_t index) {
  IoThread& io = *io_threads_[index];
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];

  while (true) {
    // Sleep indefinitely unless some timer needs servicing: the idle reaper,
    // an accept cooldown, or the shutdown drain.
    int timeout_ms = -1;
    if (config_.idle_timeout_ms > 0) timeout_ms = 50;
    if (index == 0 && accept_cooldown_until_ != Clock::time_point{})
      timeout_ms = 10;
    if (draining_.load()) timeout_ms = 10;

    const int n = io.epoll.wait(events, kMaxEvents, timeout_ms);
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kTagWake) {
        io.wake.drain();
        continue;
      }
      if (tag == kTagListener) {
        handle_accept(io);
        continue;
      }
      // fd-keyed lookup, not a stashed pointer: an earlier event in this
      // same batch may have closed the connection already.
      const auto it = io.conns.find(static_cast<int>(tag));
      if (it == io.conns.end()) continue;
      const ConnectionPtr conn = it->second;  // handlers may erase the entry
      const std::uint32_t ev = events[i].events;
      if (ev & (EPOLLIN | EPOLLHUP | EPOLLERR))
        handle_readable(io, conn);
      else if (ev & EPOLLOUT)
        flush_and_update(io, conn);
    }

    adopt_incoming(io);
    process_dirty(io);

    if (index == 0 && !stopping_.load() &&
        accept_cooldown_until_ != Clock::time_point{} &&
        Clock::now() >= accept_cooldown_until_) {
      accept_cooldown_until_ = {};
      io.epoll.mod(listener_.fd(), EPOLLIN, kTagListener);
      handle_accept(io);  // drain anything that queued during the cooldown
    }

    reap_idle(io);

    if (draining_.load()) {
      bool pending = false;
      for (const auto& [fd, conn] : io.conns) {
        std::lock_guard<std::mutex> lock(conn->write_mutex);
        if (!conn->write_queue.empty()) {
          pending = true;
          break;
        }
      }
      if (!pending || Clock::now() >= drain_deadline_) break;
    }
  }

  // Drained (or deadline hit): close everything this thread still owns.
  std::vector<ConnectionPtr> victims;
  victims.reserve(io.conns.size());
  for (const auto& [fd, conn] : io.conns) victims.push_back(conn);
  for (const ConnectionPtr& conn : victims) close_connection(io, conn);
  adopt_incoming(io);  // late handoffs: closed immediately under draining_
}

void Server::adopt_incoming(IoThread& io) {
  std::vector<ConnectionPtr> batch;
  {
    std::lock_guard<std::mutex> lock(io.mutex);
    if (io.incoming.empty()) return;
    batch.swap(io.incoming);
  }
  const auto now = Clock::now();
  for (ConnectionPtr& conn : batch) {
    if (draining_.load()) {
      std::lock_guard<std::mutex> lock(conn->write_mutex);
      conn->closed = true;
      conn->socket.close();
      continue;
    }
    const int fd = conn->socket.fd();
    conn->last_activity = now;
    conn->armed_events = EPOLLIN;
    io.conns.emplace(fd, conn);
    io.epoll.add(fd, EPOLLIN, static_cast<std::uint64_t>(fd));
  }
}

void Server::process_dirty(IoThread& io) {
  std::vector<ConnectionPtr> batch;
  {
    std::lock_guard<std::mutex> lock(io.mutex);
    if (io.dirty.empty()) return;
    batch.swap(io.dirty);
  }
  for (const ConnectionPtr& conn : batch) {
    {
      std::lock_guard<std::mutex> lock(conn->write_mutex);
      conn->dirty = false;
    }
    flush_and_update(io, conn);
  }
}

void Server::handle_accept(IoThread& io) {
  if (stopping_.load()) return;
  while (true) {
    int err = 0;
    Socket accepted = listener_.try_accept(err);
    if (!accepted.valid()) {
      if (err == EAGAIN || err == EWOULDBLOCK) break;
      if (err == EINTR || err == ECONNABORTED || err == EPROTO) continue;
      // Persistent failure — EMFILE/ENFILE (fd exhaustion), ENOMEM, ... —
      // back off instead of hot-spinning on the still-ready listener: count
      // the drop, disarm listener interest, retry after the cooldown.
      stat_accepts_dropped_.fetch_add(1, std::memory_order_relaxed);
      accept_cooldown_until_ = Clock::now() + kAcceptCooldown;
      io.epoll.mod(listener_.fd(), 0, kTagListener);
      break;
    }
    accepted.set_nodelay(true);
    stat_connections_.fetch_add(1, std::memory_order_relaxed);

    auto conn = std::make_shared<Connection>();
    conn->socket = std::move(accepted);
    conn->last_activity = Clock::now();
    const std::size_t target = next_io_;
    next_io_ = (next_io_ + 1) % io_threads_.size();
    conn->io_index = target;
    if (target == 0) {
      const int fd = conn->socket.fd();
      conn->armed_events = EPOLLIN;
      io.conns.emplace(fd, conn);
      io.epoll.add(fd, EPOLLIN, static_cast<std::uint64_t>(fd));
    } else {
      IoThread& dst = *io_threads_[target];
      {
        std::lock_guard<std::mutex> lock(dst.mutex);
        dst.incoming.push_back(std::move(conn));
      }
      dst.wake.signal();
    }
  }
}

bool Server::read_gate_engaged(const Connection& conn) const {
  return conn.inflight.load(std::memory_order_relaxed) >=
             config_.conn_inflight_cap ||
         conn.write_queue_bytes.load(std::memory_order_relaxed) >=
             config_.write_queue_cap;
}

void Server::handle_readable(IoThread& io, const ConnectionPtr& conn) {
  conn->last_activity = Clock::now();
  std::vector<FrameAssembler::Frame> frames;
  try {
    while (!conn->read_closed) {
      // Backpressure: stop pulling bytes off a connection that already has
      // its fill of admitted requests or unwritten reply bytes. The bytes
      // wait in the kernel buffer; flush_and_update disarms EPOLLIN below
      // so the reactor does not spin on the still-ready socket.
      if (read_gate_engaged(*conn)) break;

      const Socket::ReadResult r =
          conn->socket.read_some(io.read_buf.data(), io.read_buf.size());
      if (r.status == Socket::ReadStatus::kWouldBlock) break;
      if (r.status == Socket::ReadStatus::kEof) {
        conn->read_closed = true;
        break;
      }

      frames.clear();
      const bool ok = conn->assembler.consume(io.read_buf.data(), r.bytes,
                                              frames);
      for (FrameAssembler::Frame& f : frames)
        process_frame(conn, std::move(f));
      if (!ok) {
        // The stream's framing cannot be trusted any more: answer, then
        // stop reading. Replies already owed (frames completed earlier,
        // including in this very span) still flush before the close.
        const FrameHeader& bad = conn->assembler.fatal_header();
        switch (conn->assembler.fatal_verdict()) {
          case HeaderVerdict::kBadMagic:
            send_error(conn, 0, ErrorCode::kMalformedFrame,
                       "bad frame magic (expected PGSV)");
            break;
          case HeaderVerdict::kBadVersion:
            send_error(conn, bad.request_id, ErrorCode::kBadVersion,
                       "unsupported protocol version " +
                           std::to_string(bad.version) +
                           " (this server speaks " +
                           std::to_string(kProtocolVersion) + ")");
            break;
          case HeaderVerdict::kOversized:
            send_error(conn, bad.request_id, ErrorCode::kMalformedFrame,
                       "frame payload larger than the protocol cap");
            break;
          case HeaderVerdict::kOk:
            break;  // unreachable: consume() only fails on a bad verdict
        }
        conn->read_closed = true;
        break;
      }
      // A short read drained the socket; the next readiness event (level-
      // triggered) resumes if more arrived meanwhile.
      if (r.bytes < io.read_buf.size()) break;
    }
  } catch (const SocketError&) {
    // Peer reset mid-read: nothing left to answer.
    close_connection(io, conn);
    return;
  }
  flush_and_update(io, conn);
}

void Server::process_frame(const ConnectionPtr& conn,
                           FrameAssembler::Frame&& frame) {
  const FrameHeader& header = frame.header;
  switch (header.kind) {
    case FrameKind::kPing:
      stat_pings_.fetch_add(1, std::memory_order_relaxed);
      send_frame(conn, FrameKind::kPongReply, header.request_id, nullptr, 0);
      return;

    case FrameKind::kPredictRequest: {
      if (frame.payload.empty()) {
        send_error(conn, header.request_id, ErrorCode::kBadPayload,
                   "zero-length predict payload (expected a .psample "
                   "container)");
        return;  // request-scoped failure: the connection lives on
      }

      // Bytes fast path: a byte-identical repeat of a cached request needs
      // no decode, no queue hop, and no forward pass — the whole pipeline
      // is deterministic in the payload bytes, so the stored prediction IS
      // what recomputation would produce.
      if (cache_ != nullptr) {
        if (const auto hit = cache_->lookup_bytes(frame.payload)) {
          PredictReply reply;
          reply.scaled = *hit;
          reply.runtime_us = scaler_set_.from_target(*hit);
          const auto out = encode_predict_reply_payload(reply);
          stat_requests_ok_.fetch_add(1, std::memory_order_relaxed);
          send_frame(conn, FrameKind::kPredictReply, header.request_id,
                     out.data(), out.size());
          return;
        }
      }

      Pending pending;
      pending.conn = conn;
      pending.request_id = header.request_id;
      try {
        std::istringstream is(frame.payload);
        model::TrainingSample sample = io::read_sample(is);
        pending.graph = std::move(sample.graph);
        pending.aux = sample.aux;
        if (cache_ != nullptr) pending.bytes = std::move(frame.payload);
      } catch (const io::FormatError& e) {
        // Per-request error isolation: one malformed sample answers with an
        // error reply and never disturbs the process or this connection.
        send_error(conn, header.request_id, ErrorCode::kBadPayload, e.what());
        return;
      }

      // Admit: inflight counts up BEFORE the queue sees the request, so the
      // read gate can never undercount; every non-kOk outcome answers with
      // completes=true to count back down.
      conn->inflight.fetch_add(1, std::memory_order_relaxed);
      switch (try_enqueue(std::move(pending))) {
        case Enqueue::kOk:
          return;
        case Enqueue::kBusy:
          stat_busy_.fetch_add(1, std::memory_order_relaxed);
          send_frame(conn, FrameKind::kBusyReply, header.request_id, nullptr,
                     0, /*completes=*/true);
          return;
        case Enqueue::kShuttingDown:
          send_error(conn, header.request_id, ErrorCode::kShuttingDown,
                     "server shutting down", /*completes=*/true);
          return;
      }
      return;
    }

    default:
      // Unknown or reply-direction kind; the assembler already consumed the
      // payload, so just answer and keep the connection.
      send_error(conn, header.request_id, ErrorCode::kBadKind,
                 "unexpected frame kind " +
                     std::to_string(static_cast<unsigned>(header.kind)));
      return;
  }
}

void Server::reap_idle(IoThread& io) {
  if (config_.idle_timeout_ms <= 0) return;
  const auto now = Clock::now();
  const auto limit = std::chrono::milliseconds(config_.idle_timeout_ms);
  std::vector<ConnectionPtr> victims;
  for (const auto& [fd, conn] : io.conns) {
    // "Idle" means nothing owed in either direction — a connection merely
    // waiting on a slow batch or a slow flush is live, not idle.
    if (conn->inflight.load(std::memory_order_relaxed) > 0) continue;
    if (conn->write_queue_bytes.load(std::memory_order_relaxed) > 0) continue;
    if (now - conn->last_activity >= limit) victims.push_back(conn);
  }
  for (const ConnectionPtr& conn : victims) {
    stat_idle_closed_.fetch_add(1, std::memory_order_relaxed);
    close_connection(io, conn);
  }
}

void Server::flush_and_update(IoThread& io, const ConnectionPtr& conn) {
  bool should_close = false;
  std::uint32_t want = 0;
  {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (conn->closed) return;
    try {
      while (!conn->write_queue.empty()) {
        // Gather up to kMaxFlushIov queued frames into one sendmsg: every
        // reply that landed in this window leaves in a single syscall.
        struct iovec iov[kMaxFlushIov];
        int iovcnt = 0;
        std::size_t gathered = 0;
        for (const std::vector<std::uint8_t>& buf : conn->write_queue) {
          if (iovcnt == kMaxFlushIov) break;
          const std::size_t off =
              (iovcnt == 0) ? conn->write_head_offset : 0;
          iov[iovcnt].iov_base =
              const_cast<std::uint8_t*>(buf.data()) + off;
          iov[iovcnt].iov_len = buf.size() - off;
          gathered += iov[iovcnt].iov_len;
          ++iovcnt;
        }
        const std::size_t wrote = conn->socket.write_some(iov, iovcnt);
        if (wrote == 0) break;  // kernel send buffer full: wait for EPOLLOUT
        stat_writev_calls_.fetch_add(1, std::memory_order_relaxed);
        conn->write_queue_bytes.fetch_sub(wrote, std::memory_order_relaxed);
        std::size_t consumed = conn->write_head_offset + wrote;
        while (!conn->write_queue.empty() &&
               consumed >= conn->write_queue.front().size()) {
          consumed -= conn->write_queue.front().size();
          conn->write_queue.pop_front();
          stat_reply_frames_.fetch_add(1, std::memory_order_relaxed);
        }
        conn->write_head_offset = consumed;
        if (wrote < gathered) break;  // partial: kernel buffer just filled
      }
    } catch (const SocketError&) {
      // The peer is gone; dropping its queued replies is the correct
      // outcome.
      should_close = true;
    }
    if (!should_close) {
      const bool empty = conn->write_queue.empty();
      if (empty && conn->read_closed &&
          conn->inflight.load(std::memory_order_relaxed) == 0) {
        // Nothing more will ever be owed: requests all answered, answers
        // all written, no more requests coming.
        should_close = true;
      } else {
        const bool gated = read_gate_engaged(*conn);
        if (gated && !conn->read_gated)
          stat_read_gated_.fetch_add(1, std::memory_order_relaxed);
        conn->read_gated = gated;
        if (!conn->read_closed && !gated) want |= EPOLLIN;
        if (!empty) want |= EPOLLOUT;
      }
    }
  }
  if (should_close) {
    close_connection(io, conn);
    return;
  }
  if (want != conn->armed_events) {
    const int fd = conn->socket.fd();
    io.epoll.mod(fd, want, static_cast<std::uint64_t>(fd));
    conn->armed_events = want;
  }
}

void Server::close_connection(IoThread& io, const ConnectionPtr& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (conn->closed) return;
    conn->closed = true;
    conn->write_queue.clear();
    conn->write_queue_bytes.store(0, std::memory_order_relaxed);
  }
  const int fd = conn->socket.fd();
  io.epoll.del(fd);
  conn->socket.close();
  io.conns.erase(fd);
}

// --- queue / workers ------------------------------------------------------

Server::Enqueue Server::try_enqueue(Pending&& pending) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    // Checked under the lock so stop()'s leftover sweep (which also holds
    // queue_mutex_ after setting stopping_) can never miss an admission.
    if (stopping_.load()) return Enqueue::kShuttingDown;
    if (queue_.size() >= config_.queue_depth) return Enqueue::kBusy;
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  return Enqueue::kOk;
}

std::vector<Server::Pending> Server::pop_batch() {
  std::vector<Pending> batch;
  std::unique_lock<std::mutex> lock(queue_mutex_);
  queue_cv_.wait(lock, [this] { return !queue_.empty() || stopping_.load(); });
  if (queue_.empty()) return batch;  // stopping and fully drained

  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(config_.batch_window_us);
  while (batch.size() < config_.batch_max) {
    if (!queue_.empty()) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      continue;
    }
    // Draining: never sit out the window on an empty queue during shutdown.
    if (stopping_.load()) break;
    if (queue_cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
  }
  return batch;
}

void Server::worker_loop(std::size_t /*worker_index*/) {
  // Each worker owns its engine shard: InferenceEngine keys its per-thread
  // state by OpenMP thread ids, which distinct std::threads share — one
  // engine per worker keeps the workspace arenas disjoint.
  model::InferenceEngine engine(*model_);

  std::vector<model::EncodedGraph> graphs;
  std::vector<std::array<float, 2>> aux;
  std::vector<double> scaled;
  // Cache-path scratch: batch embeddings, the indices that missed, and the
  // compacted head inputs/outputs for just those misses.
  tensor::Matrix embeddings;
  tensor::Matrix miss_pooled;
  std::vector<std::size_t> miss_idx;
  std::vector<std::array<float, 2>> miss_aux;
  std::vector<double> miss_out;
  while (true) {
    std::vector<Pending> batch = pop_batch();
    if (batch.empty()) return;

    graphs.clear();
    aux.clear();
    graphs.reserve(batch.size());
    aux.reserve(batch.size());
    for (Pending& p : batch) {
      graphs.push_back(std::move(p.graph));
      aux.push_back(p.aux);
    }
    scaled.assign(batch.size(), 0.0);
    const model::ScheduleStats before = engine.schedule_stats();
    try {
      if (cache_ != nullptr) {
        // Embed once, probe per request, run the FC head only on misses.
        // The head is row-independent, so predict_head over the compacted
        // miss rows is bitwise what predict_batch would have produced.
        engine.embed_batch(graphs, embeddings);
        miss_idx.clear();
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (const auto hit = cache_->lookup(embeddings.row_span(i), aux[i]))
            scaled[i] = *hit;
          else
            miss_idx.push_back(i);
        }
        if (!miss_idx.empty()) {
          miss_pooled.reshape(miss_idx.size(), embeddings.cols());
          miss_aux.clear();
          for (std::size_t m = 0; m < miss_idx.size(); ++m) {
            const auto src = embeddings.row_span(miss_idx[m]);
            std::memcpy(miss_pooled.row_span(m).data(), src.data(),
                        src.size() * sizeof(float));
            miss_aux.push_back(aux[miss_idx[m]]);
          }
          miss_out.assign(miss_idx.size(), 0.0);
          engine.predict_head(miss_pooled, miss_aux, miss_out);
          for (std::size_t m = 0; m < miss_idx.size(); ++m) {
            scaled[miss_idx[m]] = miss_out[m];
            cache_->insert(embeddings.row_span(miss_idx[m]),
                           aux[miss_idx[m]], miss_out[m],
                           std::move(batch[miss_idx[m]].bytes));
          }
        }
      } else {
        engine.predict_batch(graphs, aux, scaled);
      }
    } catch (const std::exception& e) {
      for (const Pending& p : batch)
        send_error(p.conn, p.request_id, ErrorCode::kInternal, e.what(),
                   /*completes=*/true);
      continue;
    }
    stat_batches_.fetch_add(1, std::memory_order_relaxed);
    // Fold this batch's scheduler counters (the worker-local engine's
    // delta) into the server-wide totals so stats() sees all shards.
    const model::ScheduleStats after = engine.schedule_stats();
    stat_sched_chunks_.fetch_add(after.chunks - before.chunks,
                                 std::memory_order_relaxed);
    stat_sched_rows_.fetch_add(after.rows - before.rows,
                               std::memory_order_relaxed);
    stat_sched_intra_.fetch_add(after.intra_chunks - before.intra_chunks,
                                std::memory_order_relaxed);

    for (std::size_t i = 0; i < batch.size(); ++i) {
      PredictReply reply;
      reply.scaled = scaled[i];
      reply.runtime_us = scaler_set_.from_target(scaled[i]);
      const auto payload = encode_predict_reply_payload(reply);
      // Count before writing: a client that reads stats() right after its
      // reply must already see this request.
      stat_requests_ok_.fetch_add(1, std::memory_order_relaxed);
      send_frame(batch[i].conn, FrameKind::kPredictReply, batch[i].request_id,
                 payload.data(), payload.size(), /*completes=*/true);
    }
  }
}

// --- replies --------------------------------------------------------------

void Server::send_frame(const ConnectionPtr& conn, FrameKind kind,
                        std::uint64_t request_id, const void* payload,
                        std::size_t payload_bytes, bool completes) {
  enqueue_reply(conn, encode_frame(kind, request_id, payload, payload_bytes),
                completes);
}

void Server::send_error(const ConnectionPtr& conn, std::uint64_t request_id,
                        ErrorCode code, const std::string& message,
                        bool completes) {
  ErrorReply reply;
  reply.code = code;
  reply.message = message;
  const auto payload = encode_error_reply_payload(reply);
  stat_requests_error_.fetch_add(1, std::memory_order_relaxed);
  send_frame(conn, FrameKind::kErrorReply, request_id, payload.data(),
             payload.size(), completes);
}

void Server::enqueue_reply(const ConnectionPtr& conn,
                           std::vector<std::uint8_t>&& frame, bool completes) {
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    // The inflight count-down happens here, under the same mutex as the
    // queue push and the close check in flush_and_update: the owning io
    // thread can never observe "queue empty + inflight 0" with this reply
    // still unqueued, so the last reply on a read-closed connection is
    // never dropped by an early close.
    if (completes) conn->inflight.fetch_sub(1, std::memory_order_relaxed);
    if (!conn->closed) {
      // Opportunistic direct write: with nothing queued ahead of it the
      // frame can go straight to the kernel from this thread (the mutex
      // serialises all writers of this socket) — the common case costs one
      // sendmsg and zero reactor wakeups. Anything the kernel did not take
      // is queued for the reactor to finish under EPOLLOUT.
      std::size_t wrote = 0;
      if (conn->write_queue.empty()) {
        struct iovec iov;
        iov.iov_base = frame.data();
        iov.iov_len = frame.size();
        try {
          wrote = conn->socket.write_some(&iov, 1);
        } catch (const SocketError&) {
          // Hard error: queue the frame anyway; the reactor's flush hits
          // the same error and closes the connection (only the owning io
          // thread may close).
          wrote = 0;
        }
        if (wrote > 0)
          stat_writev_calls_.fetch_add(1, std::memory_order_relaxed);
      }
      if (wrote >= frame.size()) {
        stat_reply_frames_.fetch_add(1, std::memory_order_relaxed);
      } else {
        if (conn->write_queue.empty()) conn->write_head_offset = wrote;
        conn->write_queue_bytes.fetch_add(frame.size() - wrote,
                                          std::memory_order_relaxed);
        conn->write_queue.push_back(std::move(frame));
      }
      // Wake the owning io thread only when there is reactor work left:
      // unwritten bytes (arm EPOLLOUT), an engaged read gate that this
      // completion may release (re-arm EPOLLIN), or a finished connection
      // to close.
      const bool work_left = !conn->write_queue.empty();
      const bool gate_recheck = conn->read_gated;
      const bool close_ready =
          !work_left && conn->read_closed &&
          conn->inflight.load(std::memory_order_relaxed) == 0;
      if ((work_left || gate_recheck || close_ready) && !conn->dirty) {
        conn->dirty = true;
        notify = true;
      }
    }
    // closed: the peer is gone (or shutdown passed); dropping is correct.
  }
  if (notify) {
    IoThread& io = *io_threads_[conn->io_index];
    {
      std::lock_guard<std::mutex> lock(io.mutex);
      io.dirty.push_back(conn);
    }
    io.wake.signal();
  }
}

}  // namespace pg::serve
