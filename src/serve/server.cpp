// Server implementation: accept/reader threads feeding a bounded admission
// queue, worker threads coalescing requests through the dynamic batching
// window into fused InferenceEngine batches.
#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include "io/pgraph_io.hpp"
#include "support/env.hpp"

namespace pg::serve {
namespace {

std::int64_t clamped_env(const char* name, std::int64_t fallback,
                         std::int64_t lo, std::int64_t hi) {
  return std::clamp(env_int(name, fallback), lo, hi);
}

}  // namespace

ServeConfig serve_config_from_env(ServeConfig base) {
  base.port = static_cast<std::uint16_t>(
      clamped_env("PARAGRAPH_SERVE_PORT", base.port, 0, 65535));
  base.workers = static_cast<std::size_t>(clamped_env(
      "PARAGRAPH_SERVE_WORKERS", static_cast<std::int64_t>(base.workers), 1, 256));
  base.queue_depth = static_cast<std::size_t>(
      clamped_env("PARAGRAPH_SERVE_QUEUE",
                  static_cast<std::int64_t>(base.queue_depth), 1, 1 << 20));
  base.batch_max = static_cast<std::size_t>(
      clamped_env("PARAGRAPH_SERVE_BATCH",
                  static_cast<std::int64_t>(base.batch_max), 1,
                  static_cast<std::int64_t>(kMaxChunkSize)));
  base.batch_window_us = static_cast<std::uint32_t>(
      clamped_env("PARAGRAPH_SERVE_WINDOW_US", base.batch_window_us, 0,
                  10'000'000));
  base.idle_timeout_ms = static_cast<int>(clamped_env(
      "PARAGRAPH_SERVE_IDLE_TIMEOUT_MS", base.idle_timeout_ms, 0, 3'600'000));
  base.cache =
      clamped_env("PARAGRAPH_SERVE_CACHE", base.cache ? 1 : 0, 0, 1) != 0;
  base.cache_eps = std::max(
      0.0, env_double("PARAGRAPH_SERVE_CACHE_EPS", base.cache_eps));
  base.cache_capacity = static_cast<std::size_t>(
      clamped_env("PARAGRAPH_SERVE_CACHE_CAP",
                  static_cast<std::int64_t>(base.cache_capacity), 1, 1 << 20));
  return base;
}

Server::Server(const model::ParaGraphModel& model,
               const model::CheckpointScalers& scalers, ServeConfig config)
    : model_(&model), config_(config) {
  scalers.apply_to(scaler_set_);
  if (config_.cache)
    cache_ = std::make_unique<SemanticCache>(
        CacheConfig{true, config_.cache_eps, config_.cache_capacity});
}

Server::~Server() { stop(); }

void Server::start() {
  if (started_.exchange(true)) return;
  listener_.listen(config_.port, config_.backlog);
  accept_thread_ = std::thread([this] { accept_loop(); });
  worker_threads_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w)
    worker_threads_.emplace_back([this, w] { worker_loop(w); });
}

void Server::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  stopping_.store(true);

  // 1. No new connections: close the listener, reap the accept thread.
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. No new requests: end-of-stream every reader and reap them. Replies
  //    in flight still go out (only the read side is shut down).
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const ConnectionPtr& conn : connections_) conn->socket.shutdown_read();
  }
  for (std::thread& t : reader_threads_)
    if (t.joinable()) t.join();

  // 3. Drain: workers finish everything admitted, then exit on the empty
  //    queue (pop_batch returns empty once stopping_ && queue empty).
  queue_cv_.notify_all();
  for (std::thread& t : worker_threads_)
    if (t.joinable()) t.join();

  // 4. Any request admitted in the shutdown race after its worker exited
  //    still gets an answer — the drain contract is "every admitted request
  //    is replied to", even if the reply is shutting-down.
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    while (!queue_.empty()) {
      Pending pending = std::move(queue_.front());
      queue_.pop_front();
      send_error(pending.conn, pending.request_id, ErrorCode::kShuttingDown,
                 "server shutting down");
    }
  }

  std::lock_guard<std::mutex> lock(conn_mutex_);
  connections_.clear();  // closes the sockets
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections = stat_connections_.load(std::memory_order_relaxed);
  s.requests_ok = stat_requests_ok_.load(std::memory_order_relaxed);
  s.requests_error = stat_requests_error_.load(std::memory_order_relaxed);
  s.busy_rejected = stat_busy_.load(std::memory_order_relaxed);
  s.batches = stat_batches_.load(std::memory_order_relaxed);
  s.pings = stat_pings_.load(std::memory_order_relaxed);
  s.sched_chunks = stat_sched_chunks_.load(std::memory_order_relaxed);
  s.sched_rows = stat_sched_rows_.load(std::memory_order_relaxed);
  s.sched_intra_chunks = stat_sched_intra_.load(std::memory_order_relaxed);
  if (cache_) {
    const CacheStats cs = cache_->stats();
    s.cache_hits = cs.hits;
    s.cache_misses = cs.misses;
    s.cache_evictions = cs.evictions;
  }
  return s;
}

// --- accept / read --------------------------------------------------------

void Server::accept_loop() {
  while (!stopping_.load()) {
    Socket accepted = listener_.accept();
    if (!accepted.valid()) {
      if (stopping_.load() || !listener_.valid()) break;
      continue;  // transient accept failure
    }
    auto conn = std::make_shared<Connection>();
    conn->socket = std::move(accepted);
    if (config_.idle_timeout_ms > 0)
      conn->socket.set_recv_timeout_ms(config_.idle_timeout_ms);
    stat_connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (stopping_.load()) break;  // raced with stop(): drop the connection
    connections_.push_back(conn);
    reader_threads_.emplace_back([this, conn] { reader_loop(conn); });
  }
}

void Server::reader_loop(const ConnectionPtr& conn) {
  try {
    while (serve_frame(conn)) {
    }
  } catch (const SocketError&) {
    // Peer vanished / timed out mid-message: clean disconnect.
  }
  conn->socket.shutdown_read();
  // Reap: drop the server's reference so the descriptor closes as soon as
  // the last in-flight reply (workers hold their own ConnectionPtr) is
  // written. Without this a churn of short-lived connections — the fuzz
  // suite opens ~1000 — would hold every fd until stop().
  std::lock_guard<std::mutex> lock(conn_mutex_);
  std::erase(connections_, conn);
}

bool Server::serve_frame(const ConnectionPtr& conn) {
  std::uint8_t header_bytes[kFrameHeaderBytes];
  if (!conn->socket.read_exact(header_bytes, sizeof header_bytes))
    return false;  // clean end-of-stream between frames

  FrameHeader header;
  switch (decode_header(header_bytes, header)) {
    case HeaderVerdict::kOk:
      break;
    case HeaderVerdict::kBadMagic:
      // The stream's framing cannot be trusted any more: answer, then close.
      send_error(conn, 0, ErrorCode::kMalformedFrame,
                 "bad frame magic (expected PGSV)");
      return false;
    case HeaderVerdict::kBadVersion:
      send_error(conn, header.request_id, ErrorCode::kBadVersion,
                 "unsupported protocol version " +
                     std::to_string(header.version) + " (this server speaks " +
                     std::to_string(kProtocolVersion) + ")");
      return false;
    case HeaderVerdict::kOversized:
      send_error(conn, header.request_id, ErrorCode::kMalformedFrame,
                 "frame payload larger than the protocol cap");
      return false;
  }

  switch (header.kind) {
    case FrameKind::kPing:
      conn->socket.discard_exact(header.payload_bytes);
      stat_pings_.fetch_add(1, std::memory_order_relaxed);
      send_frame(conn, FrameKind::kPongReply, header.request_id, nullptr, 0);
      return true;

    case FrameKind::kPredictRequest: {
      if (header.payload_bytes == 0) {
        send_error(conn, header.request_id, ErrorCode::kBadPayload,
                   "zero-length predict payload (expected a .psample "
                   "container)");
        return true;  // request-scoped failure: the connection lives on
      }
      std::string payload(static_cast<std::size_t>(header.payload_bytes), '\0');
      if (!conn->socket.read_exact(payload.data(), payload.size()))
        throw SocketError("connection closed mid-payload");

      // Bytes fast path: a byte-identical repeat of a cached request needs
      // no decode, no queue hop, and no forward pass — the whole pipeline
      // is deterministic in the payload bytes, so the stored prediction IS
      // what recomputation would produce.
      if (cache_ != nullptr) {
        if (const auto hit = cache_->lookup_bytes(payload)) {
          PredictReply reply;
          reply.scaled = *hit;
          reply.runtime_us = scaler_set_.from_target(*hit);
          const auto out = encode_predict_reply_payload(reply);
          stat_requests_ok_.fetch_add(1, std::memory_order_relaxed);
          send_frame(conn, FrameKind::kPredictReply, header.request_id,
                     out.data(), out.size());
          return true;
        }
      }

      Pending pending;
      pending.conn = conn;
      pending.request_id = header.request_id;
      try {
        std::istringstream is(payload);
        model::TrainingSample sample = io::read_sample(is);
        pending.graph = std::move(sample.graph);
        pending.aux = sample.aux;
        if (cache_ != nullptr) pending.bytes = std::move(payload);
      } catch (const io::FormatError& e) {
        // Per-request error isolation: one malformed sample answers with an
        // error reply and never disturbs the process or this connection.
        send_error(conn, header.request_id, ErrorCode::kBadPayload, e.what());
        return true;
      }

      if (stopping_.load()) {
        send_error(conn, header.request_id, ErrorCode::kShuttingDown,
                   "server shutting down");
        return true;
      }
      if (!try_enqueue(std::move(pending))) {
        stat_busy_.fetch_add(1, std::memory_order_relaxed);
        send_frame(conn, FrameKind::kBusyReply, header.request_id, nullptr, 0);
      }
      return true;
    }

    default:
      // Unknown or reply-direction kind; the length field is trusted, so
      // skip the payload and keep the connection.
      conn->socket.discard_exact(header.payload_bytes);
      send_error(conn, header.request_id, ErrorCode::kBadKind,
                 "unexpected frame kind " +
                     std::to_string(static_cast<unsigned>(header.kind)));
      return true;
  }
}

// --- queue / workers ------------------------------------------------------

bool Server::try_enqueue(Pending&& pending) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_.size() >= config_.queue_depth) return false;
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  return true;
}

std::vector<Server::Pending> Server::pop_batch() {
  std::vector<Pending> batch;
  std::unique_lock<std::mutex> lock(queue_mutex_);
  queue_cv_.wait(lock, [this] { return !queue_.empty() || stopping_.load(); });
  if (queue_.empty()) return batch;  // stopping and fully drained

  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(config_.batch_window_us);
  while (batch.size() < config_.batch_max) {
    if (!queue_.empty()) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      continue;
    }
    // Draining: never sit out the window on an empty queue during shutdown.
    if (stopping_.load()) break;
    if (queue_cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
  }
  return batch;
}

void Server::worker_loop(std::size_t /*worker_index*/) {
  // Each worker owns its engine shard: InferenceEngine keys its per-thread
  // state by OpenMP thread ids, which distinct std::threads share — one
  // engine per worker keeps the workspace arenas disjoint.
  model::InferenceEngine engine(*model_);

  std::vector<model::EncodedGraph> graphs;
  std::vector<std::array<float, 2>> aux;
  std::vector<double> scaled;
  // Cache-path scratch: batch embeddings, the indices that missed, and the
  // compacted head inputs/outputs for just those misses.
  tensor::Matrix embeddings;
  tensor::Matrix miss_pooled;
  std::vector<std::size_t> miss_idx;
  std::vector<std::array<float, 2>> miss_aux;
  std::vector<double> miss_out;
  while (true) {
    std::vector<Pending> batch = pop_batch();
    if (batch.empty()) return;

    graphs.clear();
    aux.clear();
    graphs.reserve(batch.size());
    aux.reserve(batch.size());
    for (Pending& p : batch) {
      graphs.push_back(std::move(p.graph));
      aux.push_back(p.aux);
    }
    scaled.assign(batch.size(), 0.0);
    const model::ScheduleStats before = engine.schedule_stats();
    try {
      if (cache_ != nullptr) {
        // Embed once, probe per request, run the FC head only on misses.
        // The head is row-independent, so predict_head over the compacted
        // miss rows is bitwise what predict_batch would have produced.
        engine.embed_batch(graphs, embeddings);
        miss_idx.clear();
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (const auto hit = cache_->lookup(embeddings.row_span(i), aux[i]))
            scaled[i] = *hit;
          else
            miss_idx.push_back(i);
        }
        if (!miss_idx.empty()) {
          miss_pooled.reshape(miss_idx.size(), embeddings.cols());
          miss_aux.clear();
          for (std::size_t m = 0; m < miss_idx.size(); ++m) {
            const auto src = embeddings.row_span(miss_idx[m]);
            std::memcpy(miss_pooled.row_span(m).data(), src.data(),
                        src.size() * sizeof(float));
            miss_aux.push_back(aux[miss_idx[m]]);
          }
          miss_out.assign(miss_idx.size(), 0.0);
          engine.predict_head(miss_pooled, miss_aux, miss_out);
          for (std::size_t m = 0; m < miss_idx.size(); ++m) {
            scaled[miss_idx[m]] = miss_out[m];
            cache_->insert(embeddings.row_span(miss_idx[m]),
                           aux[miss_idx[m]], miss_out[m],
                           std::move(batch[miss_idx[m]].bytes));
          }
        }
      } else {
        engine.predict_batch(graphs, aux, scaled);
      }
    } catch (const std::exception& e) {
      for (const Pending& p : batch)
        send_error(p.conn, p.request_id, ErrorCode::kInternal, e.what());
      continue;
    }
    stat_batches_.fetch_add(1, std::memory_order_relaxed);
    // Fold this batch's scheduler counters (the worker-local engine's
    // delta) into the server-wide totals so stats() sees all shards.
    const model::ScheduleStats after = engine.schedule_stats();
    stat_sched_chunks_.fetch_add(after.chunks - before.chunks,
                                 std::memory_order_relaxed);
    stat_sched_rows_.fetch_add(after.rows - before.rows,
                               std::memory_order_relaxed);
    stat_sched_intra_.fetch_add(after.intra_chunks - before.intra_chunks,
                                std::memory_order_relaxed);

    for (std::size_t i = 0; i < batch.size(); ++i) {
      PredictReply reply;
      reply.scaled = scaled[i];
      reply.runtime_us = scaler_set_.from_target(scaled[i]);
      const auto payload = encode_predict_reply_payload(reply);
      // Count before writing: a client that reads stats() right after its
      // reply must already see this request.
      stat_requests_ok_.fetch_add(1, std::memory_order_relaxed);
      send_frame(batch[i].conn, FrameKind::kPredictReply, batch[i].request_id,
                 payload.data(), payload.size());
    }
  }
}

// --- replies --------------------------------------------------------------

void Server::send_frame(const ConnectionPtr& conn, FrameKind kind,
                        std::uint64_t request_id, const void* payload,
                        std::size_t payload_bytes) {
  const auto frame = encode_frame(kind, request_id, payload, payload_bytes);
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  try {
    conn->socket.write_all(frame.data(), frame.size());
  } catch (const SocketError&) {
    // The peer is gone; dropping its reply is the correct outcome.
  }
}

void Server::send_error(const ConnectionPtr& conn, std::uint64_t request_id,
                        ErrorCode code, const std::string& message) {
  ErrorReply reply;
  reply.code = code;
  reply.message = message;
  const auto payload = encode_error_reply_payload(reply);
  stat_requests_error_.fetch_add(1, std::memory_order_relaxed);
  send_frame(conn, FrameKind::kErrorReply, request_id, payload.data(),
             payload.size());
}

}  // namespace pg::serve
