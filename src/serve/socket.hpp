// Minimal RAII wrappers over POSIX loopback TCP sockets, shared by the
// server, the client library, the load generator, and the serve tests.
// Failures surface as SocketError (an environmental condition, like
// io::FormatError for files) — never errno-checking boilerplate at every
// call site, never a crash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace pg::serve {

class SocketError : public std::runtime_error {
 public:
  explicit SocketError(const std::string& what) : std::runtime_error(what) {}
};

/// Owning file descriptor; closes on destruction, move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  void close();
  /// shutdown(2) the read side: a thread blocked reading this socket wakes
  /// with end-of-stream. Replies in flight may still be written.
  void shutdown_read();
  /// shutdown(2) the write side: signals end-of-requests to the peer while
  /// keeping the read side open for remaining replies.
  void shutdown_write();

  /// Reads exactly `n` bytes. Returns false on clean end-of-stream before
  /// the first byte; throws SocketError on mid-message EOF, timeout, or a
  /// socket error. (A timeout while idle between messages also reads as
  /// end-of-stream=false, so idle-timeout handling stays one code path.)
  bool read_exact(void* out, std::size_t n);

  /// Discards exactly `n` bytes (unwanted payloads of known length).
  void discard_exact(std::uint64_t n);

  /// Writes all `n` bytes (MSG_NOSIGNAL: a vanished peer raises
  /// SocketError, never SIGPIPE).
  void write_all(const void* data, std::size_t n);

  /// Receive timeout for read_exact/discard_exact; 0 disables.
  void set_recv_timeout_ms(int ms);

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1:`port` (0 = kernel-chosen ephemeral
/// port; bound_port() reports the actual one).
class Listener {
 public:
  Listener() = default;
  void listen(std::uint16_t port, int backlog);
  /// Blocks for the next connection. Returns an invalid Socket once the
  /// listener has been closed (the shutdown path) or on transient failure.
  [[nodiscard]] Socket accept();
  /// Wakes any thread blocked in accept() (shutdown(2) first — plain close
  /// would leave it sleeping forever on Linux), then closes.
  void close();
  [[nodiscard]] bool valid() const { return socket_.valid(); }
  [[nodiscard]] std::uint16_t bound_port() const { return port_; }

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:`port`.
[[nodiscard]] Socket connect_loopback(std::uint16_t port);

}  // namespace pg::serve
