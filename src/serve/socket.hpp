// Minimal RAII wrappers over POSIX loopback TCP sockets, shared by the
// server, the client library, the load generator, and the serve tests.
// Failures surface as SocketError (an environmental condition, like
// io::FormatError for files) — never errno-checking boilerplate at every
// call site, never a crash.
//
// Two usage styles share the Socket class: the blocking reference client
// keeps using read_exact/write_all, while the server's epoll reactor puts
// sockets in nonblocking mode and drives them with read_some/write_some
// behind EpollSet readiness events (see serve/server.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

struct iovec;        // <sys/uio.h>
struct epoll_event;  // <sys/epoll.h>

namespace pg::serve {

class SocketError : public std::runtime_error {
 public:
  explicit SocketError(const std::string& what) : std::runtime_error(what) {}
};

/// Owning file descriptor; closes on destruction, move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  void close();
  /// shutdown(2) the read side: a thread blocked reading this socket wakes
  /// with end-of-stream. Replies in flight may still be written.
  void shutdown_read();
  /// shutdown(2) the write side: signals end-of-requests to the peer while
  /// keeping the read side open for remaining replies.
  void shutdown_write();

  /// Reads exactly `n` bytes. Returns false on clean end-of-stream before
  /// the first byte; throws SocketError on mid-message EOF, timeout, or a
  /// socket error. (A timeout while idle between messages also reads as
  /// end-of-stream=false, so idle-timeout handling stays one code path.)
  bool read_exact(void* out, std::size_t n);

  /// Discards exactly `n` bytes (unwanted payloads of known length).
  void discard_exact(std::uint64_t n);

  /// Writes all `n` bytes (MSG_NOSIGNAL: a vanished peer raises
  /// SocketError, never SIGPIPE).
  void write_all(const void* data, std::size_t n);

  /// Receive timeout for read_exact/discard_exact; 0 disables.
  void set_recv_timeout_ms(int ms);

  // --- nonblocking reactor API --------------------------------------------

  /// O_NONBLOCK on/off. The reactor sets it on every accepted socket.
  void set_nonblocking(bool on);

  /// TCP_NODELAY: reply frames are coalesced by the server itself, so
  /// Nagle's algorithm only adds latency.
  void set_nodelay(bool on);

  enum class ReadStatus : std::uint8_t {
    kData,        // `bytes` were read (>= 1)
    kWouldBlock,  // nonblocking socket has nothing buffered right now
    kEof,         // peer closed its write side
  };
  struct ReadResult {
    ReadStatus status = ReadStatus::kWouldBlock;
    std::size_t bytes = 0;
  };

  /// One recv(2) of up to `n` bytes on a nonblocking socket. Never blocks;
  /// throws SocketError on a hard error (reset, EBADF, ...).
  ReadResult read_some(void* out, std::size_t n);

  /// One gathered sendmsg(2) over `iovcnt` buffers (MSG_NOSIGNAL). Returns
  /// the bytes accepted by the kernel — 0 when the send buffer is full
  /// (would-block) — and throws SocketError on a hard error. This is the
  /// reactor's coalescing primitive: replies queued in the same batching
  /// window go out in ONE syscall.
  std::size_t write_some(const struct iovec* iov, int iovcnt);

 private:
  int fd_ = -1;
};

/// RAII epoll(7) instance. All epoll_ctl operations take a caller-chosen
/// 64-bit tag returned verbatim in the matching events (the reactor uses
/// the fd itself plus sentinel values for the listener and the wake fd).
class EpollSet {
 public:
  EpollSet();  // epoll_create1(EPOLL_CLOEXEC); throws SocketError on failure
  ~EpollSet();
  EpollSet(EpollSet&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  EpollSet& operator=(EpollSet&& other) noexcept;
  EpollSet(const EpollSet&) = delete;
  EpollSet& operator=(const EpollSet&) = delete;

  void add(int fd, std::uint32_t events, std::uint64_t tag);
  void mod(int fd, std::uint32_t events, std::uint64_t tag);
  /// Removes `fd`; quietly ignores fds the kernel no longer knows (a
  /// concurrently closed descriptor is already auto-removed).
  void del(int fd);

  /// Waits up to timeout_ms (-1 = indefinitely) and fills `out` with at
  /// most `max_events` ready events. Retries EINTR; throws SocketError on
  /// any other failure. Returns the number of events.
  int wait(struct epoll_event* out, int max_events, int timeout_ms);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

/// RAII eventfd(2) used to wake an io thread out of epoll_wait: workers
/// signal it after queueing reply bytes, stop() signals it to begin the
/// drain. Nonblocking on both ends; signalling an already-signalled fd is
/// a cheap no-op.
class WakeFd {
 public:
  WakeFd();  // eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK); throws on failure
  ~WakeFd();
  WakeFd(WakeFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  WakeFd& operator=(WakeFd&& other) noexcept;
  WakeFd(const WakeFd&) = delete;
  WakeFd& operator=(const WakeFd&) = delete;

  void signal();
  void drain();
  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1:`port` (0 = kernel-chosen ephemeral
/// port; bound_port() reports the actual one).
class Listener {
 public:
  Listener() = default;
  void listen(std::uint16_t port, int backlog);
  /// Blocks for the next connection. Returns an invalid Socket once the
  /// listener has been closed (the shutdown path) or on transient failure.
  [[nodiscard]] Socket accept();
  /// Nonblocking accept4(2): on success returns a valid, already-nonblocking
  /// Socket and err_out = 0; on failure returns an invalid Socket with
  /// err_out = errno (EAGAIN = nothing pending — not an error).
  [[nodiscard]] Socket try_accept(int& err_out);
  /// O_NONBLOCK on the listening descriptor (for reactor-driven accepts).
  void set_nonblocking(bool on);
  /// Wakes any thread blocked in accept() (shutdown(2) first — plain close
  /// would leave it sleeping forever on Linux), then closes.
  void close();
  [[nodiscard]] bool valid() const { return socket_.valid(); }
  [[nodiscard]] std::uint16_t bound_port() const { return port_; }
  [[nodiscard]] int fd() const { return socket_.fd(); }

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:`port`.
[[nodiscard]] Socket connect_loopback(std::uint16_t port);

}  // namespace pg::serve
