// The eight edge relations of ParaGraph (paper §III-A.2).
#pragma once

#include <cstdint>
#include <string_view>

namespace pg::graph {

enum class EdgeType : std::uint8_t {
  kChild,      // plain AST parent-child edge (the only weighted relation)
  kNextToken,  // left-to-right order over terminal "syntax tokens"
  kNextSib,    // order among the children of one node
  kRef,        // DeclRefExpr -> defining declaration
  kForExec,    // loop init -> cond, cond -> body
  kForNext,    // loop body -> inc, inc -> cond
  kConTrue,    // if cond -> then-branch
  kConFalse,   // if cond -> else-branch
  kCount,
};

constexpr std::size_t kNumEdgeTypes = static_cast<std::size_t>(EdgeType::kCount);

std::string_view edge_type_name(EdgeType type);

}  // namespace pg::graph
