// AST -> ParaGraph construction (paper §III-A).
//
// Three representation levels implement the paper's ablation (Table IV):
//   kRawAst       — Child edges only, every weight 1.
//   kAugmentedAst — all 8 relations, Child weights still 1.
//   kParaGraph    — all 8 relations + execution-count weights.
//
// Weighting rules (§III-A.3):
//   * default Child-edge weight: 1;
//   * inside a loop body: multiplied by the loop's trip count; when the loop
//     is the associated loop of an OpenMP directive with static scheduling,
//     the iteration space is divided by the number of parallel workers
//     (paper: 100 iterations / 4 threads -> weight 25);
//   * inside an if/else branch: multiplied by the branch probability 1/2;
//   * the loop's cond/body/inc children execute once per iteration and get
//     the multiplied weight; the init child executes once (Figure 2: for a
//     50-trip loop the ForStmt child weights are 1, 50, 50, 50).
#pragma once

#include <cstdint>

#include "frontend/ast.hpp"
#include "graph/program_graph.hpp"

namespace pg::graph {

enum class Representation : std::uint8_t {
  kRawAst,
  kAugmentedAst,
  kParaGraph,
};

std::string_view representation_name(Representation representation);

struct BuildOptions {
  Representation representation = Representation::kParaGraph;
  /// Number of workers the statically scheduled parallel-loop iteration
  /// space is divided among (threads on a CPU; teams x threads on a GPU).
  std::int64_t parallel_workers = 1;
  /// Trip count assumed for loops whose bounds do not fold statically.
  std::int64_t unknown_trip_fallback = 100;
  /// Probability assigned to each branch of an if statement.
  double branch_probability = 0.5;
  /// Weights are capped to keep float32 math well-behaved on deep nests.
  double max_weight = 1e12;
};

/// Builds the graph for an AST subtree (typically one kernel function or a
/// whole translation unit).
ProgramGraph build_graph(const frontend::AstNode* root, const BuildOptions& options);

}  // namespace pg::graph
