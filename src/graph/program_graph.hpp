// The ParaGraph data structure: a typed, weighted directed multigraph over
// AST nodes — formally (V, E, T, W) per Eq. (2) of the paper.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "frontend/ast.hpp"
#include "graph/edge_type.hpp"

namespace pg::graph {

struct GraphNode {
  frontend::NodeKind kind = frontend::NodeKind::kTranslationUnit;
  std::string label;  // identifier / operator / literal spelling, may be empty
};

struct GraphEdge {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  EdgeType type = EdgeType::kChild;
  // Weight in the paper's sense: execution-count multiplier for Child edges,
  // 0 for every other relation (W is zero for non-Child edges in Eq. 2).
  float weight = 0.0f;

  friend bool operator==(const GraphEdge&, const GraphEdge&) = default;
};

class ProgramGraph {
 public:
  std::uint32_t add_node(frontend::NodeKind kind, std::string label = {});
  void add_edge(std::uint32_t src, std::uint32_t dst, EdgeType type, float weight);

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }
  [[nodiscard]] const std::vector<GraphNode>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<GraphEdge>& edges() const { return edges_; }
  [[nodiscard]] const GraphNode& node(std::uint32_t id) const;

  /// Number of edges of each relation.
  [[nodiscard]] std::array<std::size_t, kNumEdgeTypes> edge_type_histogram() const;

  /// Largest Child-edge weight (1.0 for unweighted graphs; 0 if no edges).
  [[nodiscard]] float max_child_weight() const;

  /// In-degree restricted to Child edges; the AST-tree invariant is that
  /// every node except the root has exactly one.
  [[nodiscard]] std::vector<std::size_t> child_in_degree() const;

  /// Graphviz rendering (edge colors per relation, weights as labels).
  void write_dot(std::ostream& os) const;

  /// Line-oriented text serialisation (round-trips via `parse`).
  void serialize(std::ostream& os) const;
  static ProgramGraph deserialize(std::istream& is);

 private:
  std::vector<GraphNode> nodes_;
  std::vector<GraphEdge> edges_;
};

}  // namespace pg::graph
