// The AST -> ParaGraph pass: node creation per representation level, the
// eight edge relations, and the paper's edge-weighting rules.
#include "graph/builder.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "frontend/loop_analysis.hpp"
#include "support/check.hpp"

namespace pg::graph {
namespace {

using frontend::AstNode;
using frontend::NodeKind;

class Builder {
 public:
  Builder(const BuildOptions& options) : options_(options) {}

  ProgramGraph build(const AstNode* root) {
    check(root != nullptr, "build_graph: null root");
    add_subtree(root, 1.0);
    if (options_.representation != Representation::kRawAst) {
      add_next_token_edges(root);
      add_ref_edges();
    }
    return std::move(graph_);
  }

 private:
  /// Recursively adds `node` and its subtree. `multiplier` is the execution
  /// count of the region containing `node`.
  std::uint32_t add_subtree(const AstNode* node, double multiplier) {
    const std::uint32_t id = graph_.add_node(node->kind(), node->text());
    node_ids_.emplace(node, id);
    if (node->is(NodeKind::kDeclRefExpr) && node->referenced_decl() != nullptr)
      refs_.push_back(node);

    const bool weighted = options_.representation == Representation::kParaGraph;
    const bool augmented = options_.representation != Representation::kRawAst;

    // Per-child weight multipliers.
    std::vector<std::uint32_t> child_ids(node->num_children());
    for (std::size_t i = 0; i < node->num_children(); ++i) {
      const AstNode* child = node->child(i);
      double child_multiplier = multiplier;

      if (node->is(NodeKind::kForStmt)) {
        // Children [init, cond, body, inc]: all but init run once per trip.
        if (i != 0) {
          double trips = static_cast<double>(frontend::trip_count_or(
              node, options_.unknown_trip_fallback));
          trips = std::max(trips, 1.0);
          if (pending_division_.count(node) > 0) {
            trips = std::max(1.0, trips / static_cast<double>(
                                              std::max<std::int64_t>(
                                                  1, options_.parallel_workers)));
          }
          child_multiplier = multiplier * trips;
        }
      } else if (node->is(NodeKind::kWhileStmt) || node->is(NodeKind::kDoStmt)) {
        // Non-canonical loops: bounds don't fold; use the fallback count.
        child_multiplier =
            multiplier * static_cast<double>(options_.unknown_trip_fallback);
      } else if (node->is(NodeKind::kIfStmt) && i >= 1) {
        child_multiplier = multiplier * options_.branch_probability;
      } else if (node->is_omp_directive() && i + 1 == node->num_children() &&
                 child->is(NodeKind::kForStmt)) {
        // The directly associated loop's iteration space is split among the
        // parallel workers; with collapse the division is applied once, at
        // the outermost loop (equivalent to dividing the collapsed product).
        pending_division_.insert(child);
      }

      child_multiplier = std::min(child_multiplier, options_.max_weight);
      child_ids[i] = add_subtree(child, child_multiplier);
      const float weight =
          weighted ? static_cast<float>(child_multiplier) : 1.0f;
      graph_.add_edge(id, child_ids[i], EdgeType::kChild, weight);
    }

    if (augmented) {
      // NextSib: consecutive children, left to right.
      for (std::size_t i = 0; i + 1 < child_ids.size(); ++i)
        graph_.add_edge(child_ids[i], child_ids[i + 1], EdgeType::kNextSib, 0.0f);

      if (node->is(NodeKind::kForStmt)) {
        check(child_ids.size() == 4, "ForStmt must have 4 children");
        const std::uint32_t init = child_ids[0];
        const std::uint32_t cond = child_ids[1];
        const std::uint32_t body = child_ids[2];
        const std::uint32_t inc = child_ids[3];
        graph_.add_edge(init, cond, EdgeType::kForExec, 0.0f);
        graph_.add_edge(cond, body, EdgeType::kForExec, 0.0f);
        graph_.add_edge(body, inc, EdgeType::kForNext, 0.0f);
        graph_.add_edge(inc, cond, EdgeType::kForNext, 0.0f);
      }
      if (node->is(NodeKind::kIfStmt)) {
        graph_.add_edge(child_ids[0], child_ids[1], EdgeType::kConTrue, 0.0f);
        if (child_ids.size() > 2)
          graph_.add_edge(child_ids[0], child_ids[2], EdgeType::kConFalse, 0.0f);
      }
    }
    return id;
  }

  void add_next_token_edges(const AstNode* root) {
    const auto terminals = frontend::terminals_in_token_order(root);
    for (std::size_t i = 0; i + 1 < terminals.size(); ++i) {
      const auto src = node_ids_.find(terminals[i]);
      const auto dst = node_ids_.find(terminals[i + 1]);
      check(src != node_ids_.end() && dst != node_ids_.end(),
            "terminal missing from graph");
      graph_.add_edge(src->second, dst->second, EdgeType::kNextToken, 0.0f);
    }
  }

  void add_ref_edges() {
    for (const AstNode* ref : refs_) {
      const auto src = node_ids_.find(ref);
      const auto dst = node_ids_.find(ref->referenced_decl());
      // Declarations outside the built subtree (e.g. globals when building a
      // single function) simply have no Ref edge.
      if (src == node_ids_.end() || dst == node_ids_.end()) continue;
      graph_.add_edge(src->second, dst->second, EdgeType::kRef, 0.0f);
    }
  }

  const BuildOptions& options_;
  ProgramGraph graph_;
  std::unordered_map<const AstNode*, std::uint32_t> node_ids_;
  std::vector<const AstNode*> refs_;
  // Loops whose iteration space is split among parallel workers.
  std::unordered_set<const AstNode*> pending_division_;
};

}  // namespace

std::string_view representation_name(Representation representation) {
  switch (representation) {
    case Representation::kRawAst: return "Raw AST";
    case Representation::kAugmentedAst: return "Augmented AST";
    case Representation::kParaGraph: return "ParaGraph";
  }
  return "<invalid>";
}

ProgramGraph build_graph(const frontend::AstNode* root, const BuildOptions& options) {
  Builder builder(options);
  return builder.build(root);
}

}  // namespace pg::graph
