// Edge-relation spellings (DOT rendering and debug output).
#include "graph/edge_type.hpp"

namespace pg::graph {

std::string_view edge_type_name(EdgeType type) {
  switch (type) {
    case EdgeType::kChild: return "Child";
    case EdgeType::kNextToken: return "NextToken";
    case EdgeType::kNextSib: return "NextSib";
    case EdgeType::kRef: return "Ref";
    case EdgeType::kForExec: return "ForExec";
    case EdgeType::kForNext: return "ForNext";
    case EdgeType::kConTrue: return "ConTrue";
    case EdgeType::kConFalse: return "ConFalse";
    case EdgeType::kCount: break;
  }
  return "<invalid>";
}

}  // namespace pg::graph
