// Graph storage, edge-type histograms, and text/DOT serialisation.
#include "graph/program_graph.hpp"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace pg::graph {

std::uint32_t ProgramGraph::add_node(frontend::NodeKind kind, std::string label) {
  nodes_.push_back({kind, std::move(label)});
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void ProgramGraph::add_edge(std::uint32_t src, std::uint32_t dst, EdgeType type,
                            float weight) {
  check(src < nodes_.size() && dst < nodes_.size(), "edge endpoint out of range");
  check(weight >= 0.0f, "edge weight must be non-negative");
  edges_.push_back({src, dst, type, weight});
}

const GraphNode& ProgramGraph::node(std::uint32_t id) const {
  check(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

std::array<std::size_t, kNumEdgeTypes> ProgramGraph::edge_type_histogram() const {
  std::array<std::size_t, kNumEdgeTypes> histogram{};
  for (const GraphEdge& e : edges_) ++histogram[static_cast<std::size_t>(e.type)];
  return histogram;
}

float ProgramGraph::max_child_weight() const {
  float max_weight = 0.0f;
  for (const GraphEdge& e : edges_)
    if (e.type == EdgeType::kChild && e.weight > max_weight) max_weight = e.weight;
  return max_weight;
}

std::vector<std::size_t> ProgramGraph::child_in_degree() const {
  std::vector<std::size_t> degree(nodes_.size(), 0);
  for (const GraphEdge& e : edges_)
    if (e.type == EdgeType::kChild) ++degree[e.dst];
  return degree;
}

void ProgramGraph::write_dot(std::ostream& os) const {
  static constexpr std::array<const char*, kNumEdgeTypes> kColors = {
      "black",      // Child
      "orange",     // NextToken
      "blue",       // NextSib
      "deeppink",   // Ref
      "darkgreen",  // ForExec
      "purple",     // ForNext
      "forestgreen",// ConTrue
      "red",        // ConFalse
  };
  os << "digraph ParaGraph {\n  node [shape=box, fontsize=10];\n";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    os << "  n" << i << " [label=\"" << node_kind_name(nodes_[i].kind);
    if (!nodes_[i].label.empty()) os << "\\n" << nodes_[i].label;
    os << "\"];\n";
  }
  for (const GraphEdge& e : edges_) {
    os << "  n" << e.src << " -> n" << e.dst << " [color="
       << kColors[static_cast<std::size_t>(e.type)];
    if (e.type == EdgeType::kChild) os << ", label=\"" << e.weight << "\"";
    else os << ", style=dashed";
    os << "];\n";
  }
  os << "}\n";
}

void ProgramGraph::serialize(std::ostream& os) const {
  os << "paragraph-v1 " << nodes_.size() << ' ' << edges_.size() << '\n';
  for (const GraphNode& n : nodes_) {
    os << static_cast<int>(n.kind);
    // Labels are single-token identifiers/operators; escape spaces just in case.
    std::string label = n.label;
    for (char& c : label)
      if (c == ' ' || c == '\n') c = '_';
    os << ' ' << (label.empty() ? "-" : label) << '\n';
  }
  // max_digits10 keeps float weights bit-exact through the text round trip.
  os << std::setprecision(std::numeric_limits<float>::max_digits10);
  for (const GraphEdge& e : edges_) {
    os << e.src << ' ' << e.dst << ' ' << static_cast<int>(e.type) << ' '
       << e.weight << '\n';
  }
}

ProgramGraph ProgramGraph::deserialize(std::istream& is) {
  std::string magic;
  std::size_t num_nodes = 0;
  std::size_t num_edges = 0;
  is >> magic >> num_nodes >> num_edges;
  check(magic == "paragraph-v1", "bad graph serialisation header");
  ProgramGraph graph;
  for (std::size_t i = 0; i < num_nodes; ++i) {
    int kind = 0;
    std::string label;
    is >> kind >> label;
    check(kind >= 0 && kind < static_cast<int>(frontend::kNumNodeKinds),
          "bad node kind in serialisation");
    graph.add_node(static_cast<frontend::NodeKind>(kind),
                   label == "-" ? std::string{} : label);
  }
  for (std::size_t i = 0; i < num_edges; ++i) {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    int type = 0;
    float weight = 0.0f;
    is >> src >> dst >> type >> weight;
    check(type >= 0 && type < static_cast<int>(kNumEdgeTypes),
          "bad edge type in serialisation");
    graph.add_edge(src, dst, static_cast<EdgeType>(type), weight);
  }
  check(static_cast<bool>(is), "truncated graph serialisation");
  return graph;
}

}  // namespace pg::graph
