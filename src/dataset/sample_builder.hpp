// RawDataPoint -> model::SampleSet: re-parse sources, build graphs at the
// requested representation level, encode tensors, scale features/targets,
// and split train/validation 9:1 (paper §IV-B).
#pragma once

#include <vector>

#include "dataset/generator.hpp"
#include "graph/builder.hpp"
#include "model/sample.hpp"

namespace pg::dataset {

struct SampleBuildConfig {
  graph::Representation representation = graph::Representation::kParaGraph;
  double validation_fraction = 0.1;  // paper: 9:1 split
  std::uint64_t split_seed = 13;
  std::int64_t unknown_trip_fallback = 100;
  /// Train on MinMax-scaled log(runtime) instead of raw runtime (extension;
  /// see model::SampleSet::log_target).
  bool log_target = false;
};

/// Builds the train/validation sample set for one platform's dataset.
/// Scalers (target, teams, threads, edge weights) are fit on the training
/// split only and applied to both splits.
model::SampleSet build_sample_set(const std::vector<RawDataPoint>& points,
                                  const SampleBuildConfig& config);

/// Builds the graph for one data point at the given representation level
/// (exposed for examples/tests; `parallel_workers` = threads on CPU,
/// teams x threads on GPU — the paper's static-schedule division rule).
graph::ProgramGraph build_point_graph(const RawDataPoint& point,
                                      graph::Representation representation,
                                      std::int64_t unknown_trip_fallback = 100);

/// Encodes one scaled TrainingSample from an already-built graph. This is
/// THE canonical encode recipe — build_sample_set and `paragraph-cli
/// encode` both call it, so the on-disk and in-process paths cannot drift
/// (cli_test asserts the resulting bytes are identical). `scalers` supplies
/// the fitted teams/threads/target scalers, the child-weight scale, and the
/// target transform.
model::TrainingSample make_training_sample(const graph::ProgramGraph& graph,
                                           const model::SampleSet& scalers,
                                           std::int64_t num_teams,
                                           std::int64_t num_threads,
                                           double runtime_us,
                                           std::int32_t app_id,
                                           std::string app_name,
                                           std::string variant);

}  // namespace pg::dataset
