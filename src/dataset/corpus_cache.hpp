// Load-from-corpus path for examples/benches: sample sets are cached as
// pg::io .pgds files keyed by (platform, scale, representation, seed,
// log-target). The first run pays for parse+graph+encode over the whole
// sweep and writes the corpus; every later run streams the finished tensors
// off disk instead of regenerating them. Because the .pgds round trip is
// byte-exact down to feature bits, a cached run trains/predicts bitwise
// identically to a regenerated one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/sample_builder.hpp"
#include "support/env.hpp"

namespace pg::dataset {

/// Everything that determines a cached sample set's contents.
struct CorpusKey {
  std::string platform_name;  // sim::Platform::name (slugged for the filename)
  RunScale scale = RunScale::kDefault;
  graph::Representation representation = graph::Representation::kParaGraph;
  std::uint64_t seed = 2024;
  bool log_target = false;
};

/// Content fingerprint of a generated dataset (FNV-1a over every point's
/// identity and runtime bits). Folded into the cache filename so *any*
/// change that alters the sweep — generator logic, simulator retuning,
/// kernel-spec edits — lands on a different cache file and forces a rebuild
/// instead of silently serving stale tensors.
std::uint64_t points_fingerprint(const std::vector<RawDataPoint>& points);

/// The cache file for a key inside `dir` (e.g. "corpus/nvidia-v100-gpu-smoke-
/// paragraph-seed2024-log-fp1a2b3c4d.pgds").
std::string corpus_cache_path(const std::string& dir, const CorpusKey& key,
                              std::uint64_t fingerprint);

/// When `dir` is non-empty and the cache file exists with matching
/// provenance, loads the sample set from it; otherwise builds the set from
/// `points` via build_sample_set and (when `dir` is non-empty) writes the
/// cache for next time. `config.representation`/`log_target` must agree with
/// the key — the key (plus the points fingerprint) is what names the file.
model::SampleSet load_or_build_sample_set(const std::string& dir,
                                          const CorpusKey& key,
                                          const std::vector<RawDataPoint>& points,
                                          const SampleBuildConfig& config);

}  // namespace pg::dataset
