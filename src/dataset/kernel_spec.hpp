// Benchmark-kernel specifications (paper Table I).
//
// Each kernel is a complete C translation unit template with placeholders:
//   ${PRAGMA}  — replaced by the variant's OpenMP directive (or nothing)
//   ${N}, ${M} — problem sizes, instantiated per sweep point
//   ${NTEAMS}, ${NTHREADS} — launch configuration (inside the pragma)
// The instantiated source goes through the real frontend: the graphs the
// model sees are parsed from code, exactly like the paper's pipeline.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pg::dataset {

/// One named assignment of every size placeholder, e.g. {N: 2048, M: 64}.
using SizePoint = std::map<std::string, std::int64_t>;

struct KernelSpec {
  std::string app;      // Fig. 6 app label: Correlation, Covariance, Gauss, ...
  std::string kernel;   // unique kernel name, e.g. "covar_mean"
  std::string domain;   // Table I domain column
  std::string source_template;
  /// Whether the loop nest admits collapse(2) (paper's *_collapse variants).
  bool collapsible = false;
  /// Reduction clause text appended to the directive ("" when none).
  std::string reduction_clause;
  /// Map clauses for the *_mem variants (placeholders allowed).
  std::string map_clause;
  /// Problem-size sweep: each entry instantiates one kernel size.
  std::vector<SizePoint> default_sizes;
  std::vector<SizePoint> extra_full_sizes;  // added at PARAGRAPH_SCALE=full
};

/// The nine applications / seventeen kernels of Table I.
const std::vector<KernelSpec>& benchmark_suite();

/// Number of distinct applications in the suite.
std::size_t num_applications();

/// Stable application id for a given app label (index into sorted app list).
std::int32_t app_id(const std::string& app_name);

}  // namespace pg::dataset
