// Dataset generation: sweep (kernel x variant x size x launch config),
// instantiate sources, profile them, and "measure" runtimes on the
// simulated platform (paper §IV-A).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/kernel_spec.hpp"
#include "dataset/variants.hpp"
#include "sim/kernel_profile.hpp"
#include "sim/platform.hpp"
#include "sim/runtime_simulator.hpp"
#include "support/env.hpp"

namespace pg::dataset {

/// One measured kernel instance — everything downstream consumers need
/// (graph construction re-parses `source`; COMPOFF reads `profile`).
struct RawDataPoint {
  std::string app;
  std::string kernel;
  std::string variant;
  std::int32_t app_id = -1;
  SizePoint sizes;
  std::int64_t num_teams = 1;
  std::int64_t num_threads = 1;
  std::string source;
  sim::KernelProfile profile;
  double runtime_us = 0.0;
};

struct GenerationConfig {
  RunScale scale = RunScale::kDefault;
  std::uint64_t seed = 2024;
  sim::SimOptions sim;

  /// Launch-config sweeps; filled from `scale` when empty.
  std::vector<std::int64_t> cpu_thread_counts;
  std::vector<std::pair<std::int64_t, std::int64_t>> gpu_launch_configs;
};

/// Generates the dataset for one platform. Deterministic for a fixed
/// (platform, config); parallelised internally.
std::vector<RawDataPoint> generate_dataset(const sim::Platform& platform,
                                           const GenerationConfig& config);

/// Summary statistics in the shape of the paper's Table II.
struct DatasetStats {
  std::size_t num_points = 0;
  double min_runtime_us = 0.0;
  double max_runtime_us = 0.0;
  double stddev_us = 0.0;
};

DatasetStats dataset_stats(const std::vector<RawDataPoint>& points);

}  // namespace pg::dataset
