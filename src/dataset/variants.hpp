// The paper's six code transformations (§IV-A.1) and source instantiation.
//
// This module plays the role of OpenMP Advisor's code-transformation module:
// it rewrites a kernel template into a concrete variant by inserting the
// corresponding OpenMP directive and substituting sizes and launch
// configuration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/kernel_spec.hpp"

namespace pg::dataset {

enum class Variant : std::uint8_t {
  kCpu,              // omp parallel for
  kCpuCollapse,      // omp parallel for collapse(2)
  kGpu,              // omp target teams distribute parallel for
  kGpuCollapse,      //   ... collapse(2)
  kGpuMem,           // gpu + map clauses (explicit data transfer)
  kGpuCollapseMem,   // gpu_collapse + map clauses
  kCount,
};

std::string_view variant_name(Variant variant);
bool variant_is_gpu(Variant variant);
bool variant_has_collapse(Variant variant);
bool variant_has_transfer(Variant variant);

/// Variants applicable to a kernel on a device kind ("cpu" variants for CPU
/// platforms, "gpu" variants for GPUs; collapse variants only when the
/// kernel is collapsible).
std::vector<Variant> applicable_variants(const KernelSpec& spec, bool gpu_platform);

/// Replaces every `${KEY}` in `text`; unknown keys are an error.
std::string substitute_placeholders(
    const std::string& text,
    const std::vector<std::pair<std::string, std::string>>& bindings);

/// Full source of one concrete kernel instance.
std::string instantiate_source(const KernelSpec& spec, Variant variant,
                               const SizePoint& sizes, std::int64_t num_teams,
                               std::int64_t num_threads);

/// Just the directive line (exposed for tests / the variant_explorer
/// example), without the leading "#pragma ".
std::string build_directive(const KernelSpec& spec, Variant variant,
                            std::int64_t num_teams, std::int64_t num_threads);

}  // namespace pg::dataset
