// RawDataPoint -> model::Sample: re-parse each point's source, build its
// graph at the requested representation, encode, and split train/validation.
#include "dataset/sample_builder.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "frontend/parser.hpp"
#include "model/encoding.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace pg::dataset {
namespace {

std::int64_t parallel_workers_for(const RawDataPoint& point) {
  const bool gpu = point.variant.starts_with("gpu");
  return gpu ? point.num_teams * point.num_threads : point.num_threads;
}

}  // namespace

graph::ProgramGraph build_point_graph(const RawDataPoint& point,
                                      graph::Representation representation,
                                      std::int64_t unknown_trip_fallback) {
  const frontend::ParseResult parsed = frontend::parse_source(point.source);
  check(parsed.ok(), "build_point_graph: source failed to parse");
  graph::BuildOptions options;
  options.representation = representation;
  options.parallel_workers = std::max<std::int64_t>(1, parallel_workers_for(point));
  options.unknown_trip_fallback = unknown_trip_fallback;
  return graph::build_graph(parsed.root(), options);
}

model::TrainingSample make_training_sample(const graph::ProgramGraph& graph,
                                           const model::SampleSet& scalers,
                                           std::int64_t num_teams,
                                           std::int64_t num_threads,
                                           double runtime_us,
                                           std::int32_t app_id,
                                           std::string app_name,
                                           std::string variant) {
  model::TrainingSample sample;
  sample.graph = model::encode_graph(graph, scalers.child_weight_scale);
  sample.aux = {static_cast<float>(scalers.teams_scaler.transform(
                    static_cast<double>(num_teams))),
                static_cast<float>(scalers.threads_scaler.transform(
                    static_cast<double>(num_threads)))};
  sample.target_scaled = scalers.to_target(runtime_us);
  sample.runtime_us = runtime_us;
  sample.app_id = app_id;
  sample.app_name = std::move(app_name);
  sample.variant = std::move(variant);
  return sample;
}

model::SampleSet build_sample_set(const std::vector<RawDataPoint>& points,
                                  const SampleBuildConfig& config) {
  check(!points.empty(), "build_sample_set: empty dataset");
  check(config.validation_fraction > 0.0 && config.validation_fraction < 1.0,
        "bad validation fraction");

  // Deterministic shuffled split.
  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), 0);
  pg::Rng rng(config.split_seed);
  rng.shuffle(order);
  const std::size_t val_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(points.size()) *
                                  config.validation_fraction));
  const std::size_t train_count = points.size() - val_count;

  // Build all graphs in parallel (the expensive part: one parse per point).
  std::vector<graph::ProgramGraph> graphs(points.size());
#pragma omp parallel for schedule(dynamic, 8)
  for (std::size_t i = 0; i < points.size(); ++i)
    graphs[i] = build_point_graph(points[i], config.representation,
                                  config.unknown_trip_fallback);

  model::SampleSet set;

  // Scalers are fit on the *training* split only.
  double max_child_weight = 0.0;
  std::vector<double> train_runtimes, train_teams, train_threads;
  train_runtimes.reserve(train_count);
  for (std::size_t k = 0; k < train_count; ++k) {
    const std::size_t i = order[k];
    max_child_weight = std::max(
        max_child_weight, static_cast<double>(graphs[i].max_child_weight()));
    train_runtimes.push_back(points[i].runtime_us);
    train_teams.push_back(static_cast<double>(points[i].num_teams));
    train_threads.push_back(static_cast<double>(points[i].num_threads));
  }
  set.child_weight_scale = std::max(max_child_weight, 1.0);
  set.log_target = config.log_target;
  if (config.log_target)
    for (double& r : train_runtimes) r = std::log(std::max(r, 1e-3));
  set.target_scaler.fit(train_runtimes);
  set.teams_scaler.fit(train_teams);
  set.threads_scaler.fit(train_threads);

  auto make_sample = [&](std::size_t i) {
    const RawDataPoint& p = points[i];
    return make_training_sample(graphs[i], set, p.num_teams, p.num_threads,
                                p.runtime_us, p.app_id, p.app, p.variant);
  };

  set.train.reserve(train_count);
  set.validation.reserve(val_count);
  for (std::size_t k = 0; k < order.size(); ++k) {
    if (k < train_count) set.train.push_back(make_sample(order[k]));
    else set.validation.push_back(make_sample(order[k]));
  }
  return set;
}

}  // namespace pg::dataset
