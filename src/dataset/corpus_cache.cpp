// .pgds-backed sample-set cache (see corpus_cache.hpp).
#include "dataset/corpus_cache.hpp"

#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <filesystem>

#include "graph/builder.hpp"
#include "io/pgraph_io.hpp"

namespace pg::dataset {
namespace {

std::string slug(const std::string& name) {
  std::string out;
  bool last_dash = true;  // swallow leading separators
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      last_dash = false;
    } else if (!last_dash) {
      out += '-';
      last_dash = true;
    }
  }
  while (!out.empty() && out.back() == '-') out.pop_back();
  return out;
}

std::string representation_slug(graph::Representation representation) {
  switch (representation) {
    case graph::Representation::kRawAst: return "raw";
    case graph::Representation::kAugmentedAst: return "augmented";
    case graph::Representation::kParaGraph: return "paragraph";
  }
  return "unknown";
}

}  // namespace

std::uint64_t points_fingerprint(const std::vector<RawDataPoint>& points) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix_bytes = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ull;
    }
  };
  auto mix_str = [&](const std::string& s) {
    mix_bytes(s.data(), s.size());
    mix_bytes("\xff", 1);  // separator
  };
  const std::uint64_t count = points.size();
  mix_bytes(&count, sizeof count);
  for (const RawDataPoint& p : points) {
    mix_str(p.app);
    mix_str(p.kernel);
    mix_str(p.variant);
    mix_bytes(&p.num_teams, sizeof p.num_teams);
    mix_bytes(&p.num_threads, sizeof p.num_threads);
    // Runtime bits: any simulator retune changes the hash.
    mix_bytes(&p.runtime_us, sizeof p.runtime_us);
    // Source text: any kernel-spec or variant-instantiation change too.
    mix_str(p.source);
  }
  return h;
}

std::string corpus_cache_path(const std::string& dir, const CorpusKey& key,
                              std::uint64_t fingerprint) {
  std::string name = slug(key.platform_name);
  name += '-';
  name += to_string(key.scale);
  name += '-';
  name += representation_slug(key.representation);
  name += "-seed" + std::to_string(key.seed);
  if (key.log_target) name += "-log";
  char fp[24];
  std::snprintf(fp, sizeof fp, "-fp%016llx",
                static_cast<unsigned long long>(fingerprint));
  name += fp;
  name += ".pgds";
  return (std::filesystem::path(dir) / name).string();
}

model::SampleSet load_or_build_sample_set(const std::string& dir,
                                          const CorpusKey& key,
                                          const std::vector<RawDataPoint>& points,
                                          const SampleBuildConfig& config) {
  if (dir.empty()) return build_sample_set(points, config);

  const std::string path = corpus_cache_path(dir, key, points_fingerprint(points));
  if (std::filesystem::exists(path)) {
    try {
      io::StoredSampleSet stored = io::read_sample_set_file(path);
      // Filename collisions aside, trust but verify the stored provenance.
      if (stored.meta.platform == key.platform_name &&
          stored.meta.seed == key.seed &&
          stored.meta.log_target == key.log_target &&
          !stored.set.train.empty()) {
        std::fprintf(stderr, "[corpus] loaded %zu train + %zu val samples from %s\n",
                     stored.set.train.size(), stored.set.validation.size(),
                     path.c_str());
        return std::move(stored.set);
      }
      std::fprintf(stderr, "[corpus] %s has mismatched provenance; rebuilding\n",
                   path.c_str());
    } catch (const io::FormatError& e) {
      std::fprintf(stderr, "[corpus] %s unreadable (%s); rebuilding\n",
                   path.c_str(), e.what());
    }
  }

  model::SampleSet set = build_sample_set(points, config);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  // Write-to-temp + rename so concurrent processes sharing the corpus dir
  // never interleave into (or read) a half-written cache file; the rename
  // is atomic within the directory.
  const std::string tmp =
      path + ".tmp." + std::to_string(::getpid());
  try {
    io::write_sample_set_file(tmp, set, key.platform_name,
                              std::string(graph::representation_name(
                                  key.representation)),
                              key.seed);
    std::filesystem::rename(tmp, path);
    std::fprintf(stderr, "[corpus] wrote %s\n", path.c_str());
  } catch (const std::exception& e) {
    // A read-only corpus dir must not break the run — caching is best-effort.
    std::fprintf(stderr, "[corpus] cannot write %s (%s)\n", path.c_str(),
                 e.what());
    std::filesystem::remove(tmp, ec);
  }
  return set;
}

}  // namespace pg::dataset
