// Instantiation of the six OpenMP transformations: directive text assembly
// and placeholder substitution into the kernel templates.
#include "dataset/variants.hpp"

#include "support/check.hpp"

namespace pg::dataset {

std::string_view variant_name(Variant variant) {
  switch (variant) {
    case Variant::kCpu: return "cpu";
    case Variant::kCpuCollapse: return "cpu_collapse";
    case Variant::kGpu: return "gpu";
    case Variant::kGpuCollapse: return "gpu_collapse";
    case Variant::kGpuMem: return "gpu_mem";
    case Variant::kGpuCollapseMem: return "gpu_collapse_mem";
    case Variant::kCount: break;
  }
  return "<invalid>";
}

bool variant_is_gpu(Variant variant) {
  return variant == Variant::kGpu || variant == Variant::kGpuCollapse ||
         variant == Variant::kGpuMem || variant == Variant::kGpuCollapseMem;
}

bool variant_has_collapse(Variant variant) {
  return variant == Variant::kCpuCollapse || variant == Variant::kGpuCollapse ||
         variant == Variant::kGpuCollapseMem;
}

bool variant_has_transfer(Variant variant) {
  return variant == Variant::kGpuMem || variant == Variant::kGpuCollapseMem;
}

std::vector<Variant> applicable_variants(const KernelSpec& spec,
                                         bool gpu_platform) {
  std::vector<Variant> variants;
  if (gpu_platform) {
    variants.push_back(Variant::kGpu);
    variants.push_back(Variant::kGpuMem);
    if (spec.collapsible) {
      variants.push_back(Variant::kGpuCollapse);
      variants.push_back(Variant::kGpuCollapseMem);
    }
  } else {
    variants.push_back(Variant::kCpu);
    if (spec.collapsible) variants.push_back(Variant::kCpuCollapse);
  }
  return variants;
}

std::string substitute_placeholders(
    const std::string& text,
    const std::vector<std::pair<std::string, std::string>>& bindings) {
  std::string out;
  out.reserve(text.size());
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t open = text.find("${", pos);
    if (open == std::string::npos) {
      out.append(text, pos, std::string::npos);
      break;
    }
    out.append(text, pos, open - pos);
    const std::size_t close = text.find('}', open + 2);
    check(close != std::string::npos, "unterminated ${...} placeholder");
    const std::string key = text.substr(open + 2, close - open - 2);
    bool found = false;
    for (const auto& [name, value] : bindings) {
      if (name == key) {
        out += value;
        found = true;
        break;
      }
    }
    check(found, "unbound placeholder ${" + key + "}");
    pos = close + 1;
  }
  return out;
}

std::string build_directive(const KernelSpec& spec, Variant variant,
                            std::int64_t num_teams, std::int64_t num_threads) {
  std::string directive;
  if (variant_is_gpu(variant)) {
    directive = "omp target teams distribute parallel for num_teams(" +
                std::to_string(num_teams) + ") thread_limit(" +
                std::to_string(num_threads) + ")";
  } else {
    directive = "omp parallel for num_threads(" + std::to_string(num_threads) +
                ") schedule(static)";
  }
  if (variant_has_collapse(variant)) directive += " collapse(2)";
  if (!spec.reduction_clause.empty()) directive += " " + spec.reduction_clause;
  if (variant_has_transfer(variant) && !spec.map_clause.empty())
    directive += " " + spec.map_clause;
  return directive;
}

std::string instantiate_source(const KernelSpec& spec, Variant variant,
                               const SizePoint& sizes, std::int64_t num_teams,
                               std::int64_t num_threads) {
  std::vector<std::pair<std::string, std::string>> bindings;
  bindings.emplace_back(
      "PRAGMA", "#pragma " + build_directive(spec, variant, num_teams, num_threads));
  bindings.emplace_back("NTEAMS", std::to_string(num_teams));
  bindings.emplace_back("NTHREADS", std::to_string(num_threads));
  for (const auto& [name, value] : sizes)
    bindings.emplace_back(name, std::to_string(value));
  // The pragma itself can contain ${N}-style size placeholders (map
  // sections), so substitute sizes after splicing the pragma in.
  std::string source = substitute_placeholders(spec.source_template, bindings);
  return substitute_placeholders(source, bindings);
}

}  // namespace pg::dataset
