// The benchmark suite of Table I, written as parameterised C templates.
//
// The loop nests, operation mixes, and kernel counts per application mirror
// the paper's sources (Rodinia for KNN / Particle Filter, standard numeric
// kernels elsewhere). Sizes are chosen so the simulated runtimes span the
// paper's ranges (Table II): CPU runs reach hundreds of seconds at one
// thread, GPU runs tens of seconds, the smallest kernels fractions of a
// millisecond.
#include "dataset/kernel_spec.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace pg::dataset {
namespace {

SizePoint n(std::int64_t v) { return {{"N", v}}; }
SizePoint nm(std::int64_t nv, std::int64_t mv) { return {{"N", nv}, {"M", mv}}; }

std::vector<KernelSpec> make_suite() {
  std::vector<KernelSpec> suite;

  // --- Correlation Coefficient (1 kernel, Statistics) ---------------------
  suite.push_back({
      "Correlation", "corr", "Statistics",
      R"(
double corr_x[${N}];
double corr_y[${N}];
double corr_result[4];

void corr_kernel(void) {
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  double sxy = 0.0;
  ${PRAGMA}
  for (int i = 0; i < ${N}; i++) {
    sx += corr_x[i];
    sy += corr_y[i];
    sxx += corr_x[i] * corr_x[i];
    syy += corr_y[i] * corr_y[i];
    sxy += corr_x[i] * corr_y[i];
  }
  corr_result[0] = (${N} * sxy - sx * sy) /
                   (sqrt(${N} * sxx - sx * sx) * sqrt(${N} * syy - sy * sy));
}
)",
      /*collapsible=*/false,
      "reduction(+: sx, sy, sxx, syy, sxy)",
      "map(to: corr_x[0:${N}], corr_y[0:${N}]) map(tofrom: corr_result[0:4])",
      {n(1 << 16), n(1 << 18), n(1 << 20), n(1 << 22), n(1 << 24), n(1 << 26)},
      {n(1 << 17), n(1 << 21), n(1 << 25), n(1 << 27)},
  });

  // --- Covariance (2 kernels, Probability Theory) --------------------------
  suite.push_back({
      "Covariance", "covar_mean", "Probability Theory",
      R"(
double covar_data[${M}][${N}];
double covar_mean[${M}];

void covar_mean_kernel(void) {
  ${PRAGMA}
  for (int j = 0; j < ${M}; j++) {
    double s = 0.0;
    for (int i = 0; i < ${N}; i++) {
      s += covar_data[j][i];
    }
    covar_mean[j] = s / ${N};
  }
}
)",
      /*collapsible=*/false,
      "",
      "map(to: covar_data[0:${M}*${N}]) map(from: covar_mean[0:${M}])",
      {nm(1 << 12, 64), nm(1 << 14, 64), nm(1 << 16, 96), nm(1 << 16, 192),
       nm(1 << 18, 128), nm(1 << 19, 256)},
      {nm(1 << 13, 64), nm(1 << 15, 128), nm(1 << 18, 256), nm(1 << 20, 256)},
  });

  suite.push_back({
      "Covariance", "covar_cov", "Probability Theory",
      R"(
double covar_data[${M}][${N}];
double covar_mean[${M}];
double covar_cov[${M}][${M}];

void covar_cov_kernel(void) {
  ${PRAGMA}
  for (int j1 = 0; j1 < ${M}; j1++) {
    for (int j2 = 0; j2 < ${M}; j2++) {
      double s = 0.0;
      for (int i = 0; i < ${N}; i++) {
        s += (covar_data[j1][i] - covar_mean[j1]) *
             (covar_data[j2][i] - covar_mean[j2]);
      }
      covar_cov[j1][j2] = s / (${N} - 1);
    }
  }
}
)",
      /*collapsible=*/true,
      "",
      "map(to: covar_data[0:${M}*${N}], covar_mean[0:${M}]) "
      "map(from: covar_cov[0:${M}*${M}])",
      {nm(1 << 12, 48), nm(1 << 13, 64), nm(1 << 14, 96), nm(1 << 15, 128),
       nm(1 << 16, 192), nm(1 << 17, 256)},
      {nm(1 << 12, 64), nm(1 << 14, 128), nm(1 << 16, 256), nm(1 << 18, 256)},
  });

  // --- Gauss-Seidel (1 kernel, Linear Algebra) ------------------------------
  suite.push_back({
      "Gauss", "gauss_seidel", "Linear Algebra",
      R"(
double gs_grid[${N}][${N}];

void gauss_seidel_kernel(void) {
  ${PRAGMA}
  for (int i = 1; i < ${N} - 1; i++) {
    for (int j = 1; j < ${N} - 1; j++) {
      gs_grid[i][j] = 0.25 * (gs_grid[i - 1][j] + gs_grid[i + 1][j] +
                              gs_grid[i][j - 1] + gs_grid[i][j + 1]);
    }
  }
}
)",
      /*collapsible=*/true,
      "",
      "map(tofrom: gs_grid[0:${N}*${N}])",
      {n(256), n(512), n(1024), n(2048), n(4096), n(8192)},
      {n(384), n(768), n(1536), n(3072), n(6144), n(12288)},
  });

  // --- K-nearest neighbors (1 kernel, Data Mining; Rodinia nn) -------------
  suite.push_back({
      "NN", "knn_dist", "Data Mining",
      R"(
double knn_lat[${N}];
double knn_lng[${N}];
double knn_dist[${N}];
double knn_target[2];

void knn_kernel(void) {
  ${PRAGMA}
  for (int i = 0; i < ${N}; i++) {
    double dlat = knn_lat[i] - knn_target[0];
    double dlng = knn_lng[i] - knn_target[1];
    knn_dist[i] = sqrt(dlat * dlat + dlng * dlng);
  }
}
)",
      /*collapsible=*/false,
      "",
      "map(to: knn_lat[0:${N}], knn_lng[0:${N}], knn_target[0:2]) "
      "map(from: knn_dist[0:${N}])",
      {n(1 << 15), n(1 << 17), n(1 << 19), n(1 << 21), n(1 << 23), n(1 << 25)},
      {n(1 << 16), n(1 << 20), n(1 << 24), n(1 << 26)},
  });

  // --- Laplace's Equation (2 kernels, Numerical Analysis) -------------------
  suite.push_back({
      "Laplace", "laplace_update", "Numerical Analysis",
      R"(
double lap_in[${N}][${N}];
double lap_out[${N}][${N}];

void laplace_update_kernel(void) {
  ${PRAGMA}
  for (int i = 1; i < ${N} - 1; i++) {
    for (int j = 1; j < ${N} - 1; j++) {
      lap_out[i][j] = 0.25 * (lap_in[i - 1][j] + lap_in[i + 1][j] +
                              lap_in[i][j - 1] + lap_in[i][j + 1]);
    }
  }
}
)",
      /*collapsible=*/true,
      "",
      "map(to: lap_in[0:${N}*${N}]) map(from: lap_out[0:${N}*${N}])",
      {n(256), n(512), n(1024), n(2048), n(4096), n(8192)},
      {n(384), n(768), n(1536), n(3072), n(6144)},
  });

  suite.push_back({
      "Laplace", "laplace_residual", "Numerical Analysis",
      R"(
double lap_in[${N}][${N}];
double lap_out[${N}][${N}];
double lap_residual[1];

void laplace_residual_kernel(void) {
  double r = 0.0;
  ${PRAGMA}
  for (int i = 1; i < ${N} - 1; i++) {
    for (int j = 1; j < ${N} - 1; j++) {
      double d = lap_out[i][j] - lap_in[i][j];
      if (d < 0.0) {
        d = 0.0 - d;
      }
      r += d;
    }
  }
  lap_residual[0] = r;
}
)",
      /*collapsible=*/true,
      "reduction(+: r)",
      "map(to: lap_in[0:${N}*${N}], lap_out[0:${N}*${N}]) "
      "map(tofrom: lap_residual[0:1])",
      {n(256), n(512), n(1024), n(2048), n(4096), n(8192)},
      {n(384), n(768), n(1536), n(3072), n(6144)},
  });

  // --- Matrix-Matrix Multiplication (1 kernel, Linear Algebra) --------------
  suite.push_back({
      "MM", "matmul", "Linear Algebra",
      R"(
double mm_a[${N}][${N}];
double mm_b[${N}][${N}];
double mm_c[${N}][${N}];

void mm_kernel(void) {
  ${PRAGMA}
  for (int i = 0; i < ${N}; i++) {
    for (int j = 0; j < ${N}; j++) {
      double s = 0.0;
      for (int k = 0; k < ${N}; k++) {
        s += mm_a[i][k] * mm_b[k][j];
      }
      mm_c[i][j] = s;
    }
  }
}
)",
      /*collapsible=*/true,
      "",
      "map(to: mm_a[0:${N}*${N}], mm_b[0:${N}*${N}]) map(from: mm_c[0:${N}*${N}])",
      {n(128), n(256), n(512), n(1024), n(2048), n(4096), n(8192)},
      {n(192), n(384), n(768), n(1536), n(3072), n(6144)},
  });

  // --- Matrix-Vector Multiplication (1 kernel, Linear Algebra) --------------
  suite.push_back({
      "MV", "matvec", "Linear Algebra",
      R"(
double mv_a[${N}][${N}];
double mv_x[${N}];
double mv_y[${N}];

void mv_kernel(void) {
  ${PRAGMA}
  for (int i = 0; i < ${N}; i++) {
    double s = 0.0;
    for (int j = 0; j < ${N}; j++) {
      s += mv_a[i][j] * mv_x[j];
    }
    mv_y[i] = s;
  }
}
)",
      /*collapsible=*/false,
      "",
      "map(to: mv_a[0:${N}*${N}], mv_x[0:${N}]) map(from: mv_y[0:${N}])",
      {n(512), n(1024), n(2048), n(4096), n(8192), n(16384), n(32768)},
      {n(768), n(1536), n(3072), n(6144), n(12288)},
  });

  // --- Matrix Transpose (1 kernel, Linear Algebra) ---------------------------
  suite.push_back({
      "Transpose", "transpose", "Linear Algebra",
      R"(
double tr_a[${N}][${N}];
double tr_b[${N}][${N}];

void transpose_kernel(void) {
  ${PRAGMA}
  for (int i = 0; i < ${N}; i++) {
    for (int j = 0; j < ${N}; j++) {
      tr_b[j][i] = tr_a[i][j];
    }
  }
}
)",
      /*collapsible=*/true,
      "",
      "map(to: tr_a[0:${N}*${N}]) map(from: tr_b[0:${N}*${N}])",
      {n(512), n(1024), n(2048), n(4096), n(8192), n(16384)},
      {n(768), n(1536), n(3072), n(6144), n(12288)},
  });

  // --- Particle Filter (7 kernels, Medical Imaging; Rodinia) -----------------
  const std::vector<SizePoint> pf_sizes = {
      nm(1 << 12, 32), nm(1 << 14, 48), nm(1 << 16, 64),
      nm(1 << 18, 96), nm(1 << 19, 128), nm(1 << 20, 128)};
  const std::vector<SizePoint> pf_full = {nm(1 << 13, 32), nm(1 << 15, 64),
                                          nm(1 << 17, 96), nm(1 << 21, 128)};

  suite.push_back({
      "ParticleFilter", "pf_likelihood", "Medical Imaging",
      R"(
double pf_array_x[${N}];
double pf_array_y[${N}];
double pf_objxy[${M}];
double pf_likelihood[${N}];

void pf_likelihood_kernel(void) {
  ${PRAGMA}
  for (int i = 0; i < ${N}; i++) {
    double s = 0.0;
    for (int j = 0; j < ${M}; j++) {
      double dx = pf_array_x[i] - pf_objxy[j];
      double dy = pf_array_y[i] - pf_objxy[j];
      s += (dx * dx + dy * dy) / 50.0;
    }
    pf_likelihood[i] = s / ${M};
  }
}
)",
      /*collapsible=*/false,
      "",
      "map(to: pf_array_x[0:${N}], pf_array_y[0:${N}], pf_objxy[0:${M}]) "
      "map(from: pf_likelihood[0:${N}])",
      pf_sizes, pf_full,
  });

  suite.push_back({
      "ParticleFilter", "pf_weights", "Medical Imaging",
      R"(
double pf_weights[${N}];
double pf_likelihood[${N}];

void pf_weights_kernel(void) {
  ${PRAGMA}
  for (int i = 0; i < ${N}; i++) {
    pf_weights[i] = pf_weights[i] * exp(pf_likelihood[i]);
  }
}
)",
      /*collapsible=*/false,
      "",
      "map(to: pf_likelihood[0:${N}]) map(tofrom: pf_weights[0:${N}])",
      pf_sizes, pf_full,
  });

  suite.push_back({
      "ParticleFilter", "pf_normalize", "Medical Imaging",
      R"(
double pf_weights[${N}];
double pf_sum_weights[1];

void pf_normalize_kernel(void) {
  double s = 0.0;
  ${PRAGMA}
  for (int i = 0; i < ${N}; i++) {
    s += pf_weights[i];
  }
  pf_sum_weights[0] = s;
}
)",
      /*collapsible=*/false,
      "reduction(+: s)",
      "map(to: pf_weights[0:${N}]) map(tofrom: pf_sum_weights[0:1])",
      pf_sizes, pf_full,
  });

  suite.push_back({
      "ParticleFilter", "pf_divide", "Medical Imaging",
      R"(
double pf_weights[${N}];
double pf_sum_weights[1];

void pf_divide_kernel(void) {
  ${PRAGMA}
  for (int i = 0; i < ${N}; i++) {
    pf_weights[i] = pf_weights[i] / pf_sum_weights[0];
  }
}
)",
      /*collapsible=*/false,
      "",
      "map(to: pf_sum_weights[0:1]) map(tofrom: pf_weights[0:${N}])",
      pf_sizes, pf_full,
  });

  suite.push_back({
      "ParticleFilter", "pf_u_init", "Medical Imaging",
      R"(
double pf_u[${N}];
double pf_u1[1];

void pf_u_kernel(void) {
  ${PRAGMA}
  for (int i = 0; i < ${N}; i++) {
    pf_u[i] = pf_u1[0] + i * (1.0 / ${N});
  }
}
)",
      /*collapsible=*/false,
      "",
      "map(to: pf_u1[0:1]) map(from: pf_u[0:${N}])",
      pf_sizes, pf_full,
  });

  suite.push_back({
      "ParticleFilter", "pf_find_index", "Medical Imaging",
      R"(
double pf_cfd[${N}];
double pf_u[${N}];
int pf_indices[${N}];

void pf_find_index_kernel(void) {
  ${PRAGMA}
  for (int j = 0; j < ${N}; j++) {
    int index = 0 - 1;
    for (int x = 0; x < ${N}; x++) {
      if (pf_cfd[x] >= pf_u[j]) {
        if (index < 0) {
          index = x;
        }
      }
    }
    if (index < 0) {
      index = ${N} - 1;
    }
    pf_indices[j] = index;
  }
}
)",
      /*collapsible=*/false,
      "",
      "map(to: pf_cfd[0:${N}], pf_u[0:${N}]) map(from: pf_indices[0:${N}])",
      {nm(1 << 10, 32), nm(1 << 12, 48), nm(1 << 14, 64), nm(1 << 16, 96),
       nm(1 << 17, 128), nm(1 << 18, 128)},
      {nm(1 << 11, 32), nm(1 << 13, 64), nm(1 << 15, 96), nm(1 << 19, 128)},
  });

  suite.push_back({
      "ParticleFilter", "pf_moments", "Medical Imaging",
      R"(
double pf_array_x[${N}];
double pf_array_y[${N}];
double pf_weights[${N}];
double pf_moments[2];

void pf_moments_kernel(void) {
  double mx = 0.0;
  double my = 0.0;
  ${PRAGMA}
  for (int i = 0; i < ${N}; i++) {
    mx += pf_array_x[i] * pf_weights[i];
    my += pf_array_y[i] * pf_weights[i];
  }
  pf_moments[0] = mx;
  pf_moments[1] = my;
}
)",
      /*collapsible=*/false,
      "reduction(+: mx, my)",
      "map(to: pf_array_x[0:${N}], pf_array_y[0:${N}], pf_weights[0:${N}]) "
      "map(tofrom: pf_moments[0:2])",
      pf_sizes, pf_full,
  });

  return suite;
}

}  // namespace

const std::vector<KernelSpec>& benchmark_suite() {
  static const std::vector<KernelSpec> suite = make_suite();
  return suite;
}

std::size_t num_applications() {
  std::vector<std::string> apps;
  for (const KernelSpec& spec : benchmark_suite()) apps.push_back(spec.app);
  std::sort(apps.begin(), apps.end());
  apps.erase(std::unique(apps.begin(), apps.end()), apps.end());
  return apps.size();
}

std::int32_t app_id(const std::string& app_name) {
  static const std::vector<std::string> sorted_apps = [] {
    std::vector<std::string> apps;
    for (const KernelSpec& spec : benchmark_suite()) apps.push_back(spec.app);
    std::sort(apps.begin(), apps.end());
    apps.erase(std::unique(apps.begin(), apps.end()), apps.end());
    return apps;
  }();
  const auto it =
      std::lower_bound(sorted_apps.begin(), sorted_apps.end(), app_name);
  check(it != sorted_apps.end() && *it == app_name, "unknown application name");
  return static_cast<std::int32_t>(it - sorted_apps.begin());
}

}  // namespace pg::dataset
