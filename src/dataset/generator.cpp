// The (kernel x variant x size x launch-config) sweep. Each point is
// instantiated to real source, parsed, and priced by the simulator;
// OpenMP-parallel over sweep points.
#include "dataset/generator.hpp"

#include <omp.h>

#include "frontend/parser.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace pg::dataset {
namespace {

std::vector<std::int64_t> default_cpu_threads(RunScale scale, int cores) {
  switch (scale) {
    case RunScale::kSmoke: return {1, 4, static_cast<std::int64_t>(cores)};
    case RunScale::kFull:
      return {1, 2, 4, 6, 8, 12, 16, 20, static_cast<std::int64_t>(cores)};
    case RunScale::kDefault: break;
  }
  return {1, 2, 4, 8, 16, static_cast<std::int64_t>(cores)};
}

std::vector<std::pair<std::int64_t, std::int64_t>> default_gpu_configs(
    RunScale scale) {
  switch (scale) {
    case RunScale::kSmoke: return {{64, 64}, {256, 256}};
    case RunScale::kFull:
      return {{16, 32},   {32, 64},   {64, 64},   {64, 128},  {128, 128},
              {256, 128}, {256, 256}, {512, 256}, {1024, 256}, {2048, 128}};
    case RunScale::kDefault: break;
  }
  return {{32, 64}, {64, 128}, {128, 128}, {256, 256}, {512, 256}, {1024, 256}};
}

std::vector<SizePoint> sizes_for_scale(const KernelSpec& spec, RunScale scale) {
  std::vector<SizePoint> sizes = spec.default_sizes;
  if (scale == RunScale::kSmoke) {
    // Keep ~3 sizes spanning the range.
    std::vector<SizePoint> trimmed;
    for (std::size_t i = 0; i < sizes.size(); i += 2) trimmed.push_back(sizes[i]);
    return trimmed;
  }
  if (scale == RunScale::kFull) {
    sizes.insert(sizes.end(), spec.extra_full_sizes.begin(),
                 spec.extra_full_sizes.end());
  }
  return sizes;
}

}  // namespace

std::vector<RawDataPoint> generate_dataset(const sim::Platform& platform,
                                           const GenerationConfig& config) {
  const bool gpu = platform.kind == sim::DeviceKind::kGpu;

  std::vector<std::int64_t> cpu_threads = config.cpu_thread_counts;
  if (cpu_threads.empty())
    cpu_threads = default_cpu_threads(config.scale, platform.cores);
  auto gpu_configs = config.gpu_launch_configs;
  if (gpu_configs.empty()) gpu_configs = default_gpu_configs(config.scale);

  // Enumerate every sweep point first so the parallel loop below is a flat,
  // deterministic iteration space.
  struct SweepPoint {
    const KernelSpec* spec;
    Variant variant;
    SizePoint sizes;
    std::int64_t teams;
    std::int64_t threads;
  };
  std::vector<SweepPoint> sweep;
  for (const KernelSpec& spec : benchmark_suite()) {
    const auto variants = applicable_variants(spec, gpu);
    const auto sizes = sizes_for_scale(spec, config.scale);
    for (const Variant variant : variants) {
      for (const SizePoint& size : sizes) {
        if (gpu) {
          for (const auto& [teams, threads] : gpu_configs)
            sweep.push_back({&spec, variant, size, teams, threads});
        } else {
          for (const std::int64_t threads : cpu_threads)
            sweep.push_back({&spec, variant, size, /*teams=*/1, threads});
        }
      }
    }
  }

  // Per-point RNG streams derived up front keep the result independent of
  // the parallel execution order.
  pg::Rng master(config.seed ^ std::hash<std::string>{}(platform.name));
  std::vector<pg::Rng> streams;
  streams.reserve(sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) streams.push_back(master.split());

  std::vector<RawDataPoint> points(sweep.size());
  bool parse_failure = false;
#pragma omp parallel for schedule(dynamic, 4)
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& sp = sweep[i];
    RawDataPoint point;
    point.app = sp.spec->app;
    point.kernel = sp.spec->kernel;
    point.variant = std::string(variant_name(sp.variant));
    point.app_id = app_id(sp.spec->app);
    point.sizes = sp.sizes;
    point.num_teams = sp.teams;
    point.num_threads = sp.threads;
    point.source =
        instantiate_source(*sp.spec, sp.variant, sp.sizes, sp.teams, sp.threads);

    const frontend::ParseResult parsed = frontend::parse_source(point.source);
    if (!parsed.ok()) {
#pragma omp critical
      parse_failure = true;
      continue;
    }
    point.profile = sim::profile_kernel(parsed.root());
    point.runtime_us =
        sim::measure_runtime_us(point.profile, platform, streams[i], config.sim);
    points[i] = std::move(point);
  }
  check(!parse_failure, "generated kernel source failed to parse");
  return points;
}

DatasetStats dataset_stats(const std::vector<RawDataPoint>& points) {
  check(!points.empty(), "dataset_stats: empty dataset");
  std::vector<double> runtimes;
  runtimes.reserve(points.size());
  for (const RawDataPoint& p : points) runtimes.push_back(p.runtime_us);
  DatasetStats stats;
  stats.num_points = points.size();
  stats.min_runtime_us = stats::min(runtimes);
  stats.max_runtime_us = stats::max(runtimes);
  stats.stddev_us = stats::stddev(runtimes);
  return stats;
}

}  // namespace pg::dataset
