// Internal codec machinery shared by the pg::io translation units
// (pgraph_io.cpp and dataset_view.cpp): container constants, the validated
// header/section-table prologue, the dataset record-body codec, and the
// format-v2 index-section layout. Nothing here is part of the public API —
// include pgraph_io.hpp / dataset_view.hpp instead.
#pragma once

#include <cstdint>
#include <vector>

#include "io/binary.hpp"
#include "io/pgraph_io.hpp"
#include "model/sample.hpp"

namespace pg::io::detail {

inline constexpr char kMagic[8] = {'P', 'G', 'I', 'O', 'B', 'I', 'N', '\x1a'};

// Section ids (high byte = payload family).
inline constexpr std::uint32_t kSecGraphNodes = 0x0101;
inline constexpr std::uint32_t kSecGraphEdges = 0x0102;
inline constexpr std::uint32_t kSecSampleMeta = 0x0201;
inline constexpr std::uint32_t kSecSampleFeatures = 0x0202;
inline constexpr std::uint32_t kSecSampleRelations = 0x0203;
inline constexpr std::uint32_t kSecDatasetMeta = 0x0301;
inline constexpr std::uint32_t kSecAnnMeta = 0x0401;
inline constexpr std::uint32_t kSecAnnEmbeddings = 0x0402;
inline constexpr std::uint32_t kSecAnnNeighbors = 0x0403;

// Record-stream framing; the values spell "RECD" / "DEND" on disk.
inline constexpr std::uint32_t kRecordMarker = 0x44434552;
inline constexpr std::uint32_t kEndMarker = 0x444e4544;

// Format-v2 dataset index markers; "PGIX" opens the index section appended
// after the end marker, "PGIF" closes the fixed-size footer at EOF.
inline constexpr std::uint32_t kIndexMarker = 0x58494750;
inline constexpr std::uint32_t kIndexFooterMagic = 0x46494750;

inline constexpr std::uint32_t kMaxSections = 64;
// 1 GiB: far above any legitimate section/record in this project, and the
// hard ceiling on what a crafted section-size field can make a reader
// allocate transiently (the Matrix in get_sample_features is budget-bound).
inline constexpr std::uint64_t kMaxSectionBytes = 1ull << 30;
// Containers are grown incrementally while bytes actually arrive, with at
// most this much capacity reserved up front — so a corrupt count field can
// never drive a giant allocation ahead of the reads that would expose it.
inline constexpr std::uint64_t kMaxPrealloc = 1ull << 16;

struct SectionEntry {
  std::uint32_t id = 0;
  std::uint64_t size = 0;
};

struct Prologue {
  FileInfo info;
  std::vector<SectionEntry> table;
};

FileInfo get_raw_header(Source& src);

/// Magic + kind + schema check plus the validated section table. Accepts
/// header versions in [1, max_version] (graphs/samples are version-1-only;
/// datasets also accept kDatasetFormatVersion).
Prologue get_prologue(Source& src, PayloadKind expected,
                      std::uint16_t max_version);

DatasetMeta get_dataset_meta(Source& src);

/// The split-tag-free sample body shared by .psample sections and .pgds
/// record frames (meta + features + relations, fully validated).
model::TrainingSample get_sample_body(Source& src);

// --- FNV-1a (the format's checksum primitive) -----------------------------

inline constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t fnv1a(const void* data, std::size_t n,
                           std::uint64_t h = kFnvBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Sink adapter that measures *and* checksums the bytes a codec emits —
/// the v2 writer's one serialisation pass yields the record's frame size
/// and its index checksum together, so neither can drift from the bytes.
struct FnvCountingSink {
  std::uint64_t count = 0;
  std::uint64_t hash = kFnvBasis;
  void bytes(const void* data, std::size_t n) {
    hash = fnv1a(data, n, hash);
    count += n;
  }
};

// --- format-v2 index section ----------------------------------------------

/// One record in the v2 index: where the frame lives, how long it is
/// (marker + size field + body), its split tag, and the FNV-1a checksum of
/// the body bytes (split tag included — everything after the u64 size).
struct IndexEntry {
  std::uint64_t offset = 0;    // file offset of the "RECD" marker
  std::uint64_t length = 0;    // whole frame: 12-byte header + body
  std::uint64_t checksum = 0;  // FNV-1a over the body (length - 12 bytes)
  Split split = Split::kTrain;
};

inline constexpr std::uint64_t kIndexEntryBytes = 8 + 8 + 1 + 8;
/// Marker + record count + entries + index self-checksum.
inline constexpr std::uint64_t kIndexFixedBytes = 4 + 8 + 8;
/// u64 index offset + u64 index size + u32 footer magic, always at EOF.
inline constexpr std::uint64_t kIndexFooterBytes = 8 + 8 + 4;

inline std::uint64_t index_section_bytes(std::uint64_t records) {
  return kIndexFixedBytes + records * kIndexEntryBytes;
}

/// Serialises the index section (marker, count, entries, self-checksum).
/// The self-checksum covers the entry bytes exactly as written, so any
/// flipped index byte is caught before a single offset is trusted.
template <class Sink>
void put_dataset_index(Sink& sink, const std::vector<IndexEntry>& entries) {
  put_u32(sink, kIndexMarker);
  put_u64(sink, entries.size());
  FnvCountingSink hashed;
  for (const IndexEntry& e : entries) {
    put_u64(hashed, e.offset);
    put_u64(hashed, e.length);
    put_u8(hashed, static_cast<std::uint8_t>(e.split));
    put_u64(hashed, e.checksum);
    put_u64(sink, e.offset);
    put_u64(sink, e.length);
    put_u8(sink, static_cast<std::uint8_t>(e.split));
    put_u64(sink, e.checksum);
  }
  put_u64(sink, hashed.hash);
}

template <class Sink>
void put_index_footer(Sink& sink, std::uint64_t index_offset,
                      std::uint64_t index_size) {
  put_u64(sink, index_offset);
  put_u64(sink, index_size);
  put_u32(sink, kIndexFooterMagic);
}

}  // namespace pg::io::detail
