// Low-level primitives for the pg::io binary formats.
//
// Every multi-byte value is written in explicit little-endian byte order
// (assembled by shifts, never memcpy'd from host memory), so files written
// on any host read back identically on any other. Floats travel as their
// IEEE-754 bit patterns via the same integer paths — round trips are
// bit-exact, including NaN payloads.
//
// Writers are templates over a Sink so the same serialisation code both
// *measures* (CountingSink) and *emits* (StreamSink) a payload; the
// section-table sizes in the container header therefore come from the very
// code that writes the bytes and cannot drift from it.
//
// Readers operate on a Source that throws FormatError on truncation and
// enforces per-section byte budgets, so a corrupt section table cannot make
// a reader run off into a neighbouring section or the rest of the file.
#pragma once

#include <bit>
#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace pg::io {

/// A malformed/corrupt/incompatible *input file*. Deliberately distinct
/// from pg::InternalError: bad bytes on disk are an environmental condition
/// callers may want to catch and report, not a library bug.
class FormatError : public std::runtime_error {
 public:
  explicit FormatError(const std::string& what) : std::runtime_error(what) {}
};

/// Upper bound on any single length/count field. Far above every legitimate
/// graph in this project, low enough that a corrupt count fails cleanly
/// instead of attempting a multi-gigabyte allocation.
inline constexpr std::uint64_t kMaxReasonableCount = 1ull << 28;

// --- sinks ----------------------------------------------------------------

struct StreamSink {
  std::ostream& os;
  void bytes(const void* data, std::size_t n) {
    os.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  }
};

struct CountingSink {
  std::uint64_t count = 0;
  void bytes(const void*, std::size_t n) { count += n; }
};

template <class Sink>
void put_u8(Sink& sink, std::uint8_t v) {
  sink.bytes(&v, 1);
}

template <class Sink>
void put_u16(Sink& sink, std::uint16_t v) {
  const std::uint8_t b[2] = {static_cast<std::uint8_t>(v),
                             static_cast<std::uint8_t>(v >> 8)};
  sink.bytes(b, sizeof b);
}

template <class Sink>
void put_u32(Sink& sink, std::uint32_t v) {
  const std::uint8_t b[4] = {
      static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
      static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
  sink.bytes(b, sizeof b);
}

template <class Sink>
void put_u64(Sink& sink, std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  sink.bytes(b, sizeof b);
}

template <class Sink>
void put_i32(Sink& sink, std::int32_t v) {
  put_u32(sink, static_cast<std::uint32_t>(v));
}

template <class Sink>
void put_i64(Sink& sink, std::int64_t v) {
  put_u64(sink, static_cast<std::uint64_t>(v));
}

template <class Sink>
void put_f32(Sink& sink, float v) {
  put_u32(sink, std::bit_cast<std::uint32_t>(v));
}

template <class Sink>
void put_f64(Sink& sink, double v) {
  put_u64(sink, std::bit_cast<std::uint64_t>(v));
}

template <class Sink>
void put_string(Sink& sink, const std::string& s) {
  put_u32(sink, static_cast<std::uint32_t>(s.size()));
  sink.bytes(s.data(), s.size());
}

// --- source ---------------------------------------------------------------

/// Byte source with truncation detection and an optional byte budget (the
/// current section's declared size). Every read is accounted; a section
/// that declares fewer bytes than its payload needs fails with "section
/// overrun" instead of silently consuming its neighbour's bytes.
///
/// Two backings share the one implementation so every codec works on both:
///   * an istream (the streaming readers), and
///   * an in-memory byte range (the mmap-backed DatasetView decodes records
///     straight out of the mapping — same truncation/budget discipline, so
///     a corrupt index entry can never make a decode over-read the mapping).
class Source {
 public:
  explicit Source(std::istream& is) : is_(&is) {}

  /// Memory-backed source over [data, data + size). The range must outlive
  /// the Source; nothing is copied up front.
  Source(const void* data, std::size_t size)
      : data_(static_cast<const unsigned char*>(data)), size_(size) {}

  void bytes(void* out, std::size_t n);

  /// Discards exactly `n` bytes (unknown forward-compatible sections).
  void skip(std::uint64_t n);

  /// Total bytes consumed so far.
  [[nodiscard]] std::uint64_t consumed() const { return consumed_; }

  /// Restricts subsequent reads to the next `n` bytes. Only one budget can
  /// be active at a time (sections do not nest in this format).
  void push_budget(std::uint64_t n);

  /// Ends the current section: the payload must have consumed its declared
  /// size exactly.
  void pop_budget();

  /// Bytes left in the active budget (max u64 when none is active). Lets
  /// readers reject a corrupt count *before* sizing a container for it.
  [[nodiscard]] std::uint64_t remaining_budget() const {
    return budget_active_ ? budget_end_ - consumed_ : ~0ull;
  }

 private:
  std::istream* is_ = nullptr;          // stream backing (null in memory mode)
  const unsigned char* data_ = nullptr;  // memory backing (null in stream mode)
  std::size_t size_ = 0;                 // memory backing: total bytes
  std::uint64_t consumed_ = 0;
  std::uint64_t budget_end_ = 0;  // consumed_ limit; 0 = no active budget
  bool budget_active_ = false;
};

std::uint8_t get_u8(Source& src);
std::uint16_t get_u16(Source& src);
std::uint32_t get_u32(Source& src);
std::uint64_t get_u64(Source& src);
std::int32_t get_i32(Source& src);
std::int64_t get_i64(Source& src);
float get_f32(Source& src);
double get_f64(Source& src);
std::string get_string(Source& src);

/// `get_u64` + sanity cap: throws FormatError when the value exceeds
/// kMaxReasonableCount (corrupt count fields fail before they allocate).
std::uint64_t get_count(Source& src, const char* what);

/// `get_count` + budget fit: additionally rejects counts whose elements
/// (at `min_bytes_per_element` each, the smallest legal encoding) cannot
/// fit in the remaining section budget — so a corrupt count can never
/// drive a container allocation bigger than the section it came from.
std::uint64_t get_count(Source& src, const char* what,
                        std::uint64_t min_bytes_per_element);

}  // namespace pg::io
