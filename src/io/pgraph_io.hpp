// The ParaGraph binary container format (see docs/FORMAT.md):
//
//   header   magic "PGIOBIN\x1A" | u16 version | u16 payload kind
//            | u64 feature-schema hash | u32 section count
//   table    section count x { u32 section id | u64 payload bytes }
//   payload  section payloads, concatenated in table order
//
// Three payload kinds share the container:
//   kGraph    (.pgraph)  — graph::ProgramGraph (nodes + edges sections)
//   kSample   (.psample) — model::TrainingSample (meta + features + relations)
//   kDataset  (.pgds)    — a DatasetMeta section followed by a *record
//                          stream* of framed samples (streaming: the writer
//                          never buffers the file, the reader never needs to
//                          seek or know the record count up front)
//
// The feature-schema hash pins the feature-order contract: node-kind names
// in enum order, edge-type names in enum order, and the node feature width.
// Any reordering/renaming/resizing of those enums changes the hash, and
// files written under the old contract are rejected instead of silently
// decoding into wrong one-hot columns.
//
// All read paths throw io::FormatError on malformed input (bad magic, wrong
// version/kind, truncation, corrupt section table, inconsistent payloads) —
// never UB, never pg::InternalError.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/program_graph.hpp"
#include "io/binary.hpp"  // FormatError — part of every reader's contract
#include "model/sample.hpp"

namespace pg::io {

inline constexpr std::uint16_t kFormatVersion = 1;

/// Current dataset (.pgds) container version. Version 2 appends a
/// record-offset index section (offset/length/split/FNV-1a checksum per
/// record + footer) after the end marker, enabling mmap-backed random
/// access via DatasetView; the record stream itself is byte-identical to
/// version 1, so the streaming DatasetReader reads both. Graph/sample
/// payloads stay at kFormatVersion.
inline constexpr std::uint16_t kDatasetFormatVersion = 2;

enum class PayloadKind : std::uint16_t {
  kGraph = 1,
  kSample = 2,
  kDataset = 3,
  kAnnIndex = 4,  // .pgann — embedding-space k-NN index (src/ann)
};

std::string_view payload_kind_name(PayloadKind kind);

/// FNV-1a hash of the feature-order contract (node-kind names, edge-type
/// names, feature width). Stored in every file header; a mismatch on read
/// means the enums changed since the file was written.
std::uint64_t feature_schema_hash();

// --- whole-graph files (.pgraph) -----------------------------------------

void write_graph(std::ostream& os, const graph::ProgramGraph& graph);
graph::ProgramGraph read_graph(std::istream& is);
void write_graph_file(const std::string& path, const graph::ProgramGraph& graph);
graph::ProgramGraph read_graph_file(const std::string& path);

// --- single-sample files (.psample) --------------------------------------

void write_sample(std::ostream& os, const model::TrainingSample& sample);
model::TrainingSample read_sample(std::istream& is);
void write_sample_file(const std::string& path, const model::TrainingSample& sample);
model::TrainingSample read_sample_file(const std::string& path);

// --- dataset files (.pgds) -----------------------------------------------

/// Provenance + the fitted scalers a deployment needs to interpret the
/// stored (already scaled) samples. Mirrors model::SampleSet's scaler state.
struct DatasetMeta {
  std::string platform;        // e.g. "NVIDIA V100 (GPU)"
  std::string representation;  // e.g. "ParaGraph"
  std::uint64_t seed = 0;      // generation seed (0 = not applicable)
  bool log_target = false;
  double child_weight_scale = 1.0;
  double target_min = 0.0, target_max = 1.0;
  double teams_min = 0.0, teams_max = 1.0;
  double threads_min = 0.0, threads_max = 1.0;

  /// Copies the scaler state (not provenance) out of a sample set.
  static DatasetMeta scalers_from(const model::SampleSet& set);

  /// Installs the scaler state into a sample set.
  void apply_scalers(model::SampleSet& set) const;
};

enum class Split : std::uint8_t { kTrain = 0, kValidation = 1 };

namespace detail {
struct IndexEntry;  // format_detail.hpp — v2 index bookkeeping
}

/// Streams samples into a .pgds container. Header + meta are written by the
/// constructor, each append() frames and writes one record immediately, and
/// finish() seals the stream with an end marker carrying the record count
/// (readers detect a dropped tail). The destructor finishes automatically.
///
/// `format_version` selects the container version: 2 (default) additionally
/// tracks each record's offset/length/split/checksum and appends the index
/// section + footer in finish(); 1 reproduces the legacy byte stream
/// exactly. Record bytes are identical under both.
class DatasetWriter {
 public:
  DatasetWriter(std::ostream& os, const DatasetMeta& meta,
                std::uint16_t format_version = kDatasetFormatVersion);
  ~DatasetWriter();
  DatasetWriter(const DatasetWriter&) = delete;
  DatasetWriter& operator=(const DatasetWriter&) = delete;

  void append(const model::TrainingSample& sample, Split split);
  void finish();

  [[nodiscard]] std::uint64_t records_written() const { return records_; }
  [[nodiscard]] std::uint16_t format_version() const { return version_; }

 private:
  std::ostream& os_;
  std::uint16_t version_;
  std::uint64_t records_ = 0;
  std::uint64_t offset_ = 0;  // bytes emitted so far (v2 index bookkeeping)
  std::vector<detail::IndexEntry> index_;
  bool finished_ = false;
};

/// Streams samples out of a .pgds container: meta is available right after
/// construction; next() decodes one record at a time (no whole-file
/// buffering), returns false at the (validated) end marker.
class DatasetReader {
 public:
  explicit DatasetReader(std::istream& is);

  [[nodiscard]] const DatasetMeta& meta() const { return meta_; }

  /// Container version from the header (1 or 2). The record stream is
  /// identical under both; a v2 file's trailing index section is simply
  /// left unread once next() hits the end marker.
  [[nodiscard]] std::uint16_t format_version() const { return version_; }

  /// Reads the next record into `sample`/`split`; false at end-of-stream.
  bool next(model::TrainingSample& sample, Split& split);

  [[nodiscard]] std::uint64_t records_read() const { return records_; }

 private:
  class SourceHolder;
  std::istream& is_;
  DatasetMeta meta_;
  std::uint16_t version_ = kFormatVersion;
  std::uint64_t records_ = 0;
  bool done_ = false;
};

/// A deserialised dataset: the sample set (scalers installed) + provenance.
struct StoredSampleSet {
  model::SampleSet set;
  DatasetMeta meta;
};

/// Writes a whole SampleSet (train + validation, scalers from the set) with
/// the given provenance fields.
void write_sample_set(std::ostream& os, const model::SampleSet& set,
                      const std::string& platform,
                      const std::string& representation, std::uint64_t seed,
                      std::uint16_t format_version = kDatasetFormatVersion);
void write_sample_set_file(const std::string& path, const model::SampleSet& set,
                           const std::string& platform,
                           const std::string& representation,
                           std::uint64_t seed,
                           std::uint16_t format_version = kDatasetFormatVersion);
StoredSampleSet read_sample_set(std::istream& is);
StoredSampleSet read_sample_set_file(const std::string& path);

// --- probing --------------------------------------------------------------

struct FileInfo {
  std::uint16_t version = 0;
  PayloadKind kind = PayloadKind::kGraph;
  std::uint64_t schema_hash = 0;
};

/// Reads just the fixed header (magic/version/kind/schema); for dispatching
/// on file kind (paragraph-cli dump) without decoding payloads. Unlike the
/// full readers this accepts any version/kind — only the magic must match.
FileInfo probe_file(const std::string& path);

}  // namespace pg::io
