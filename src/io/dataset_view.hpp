// DatasetView: mmap-backed zero-copy random access into a .pgds corpus.
//
// Opening a view reads *no record bytes*: for a format-v2 file the record
// index appended by DatasetWriter (offset / length / split / FNV-1a body
// checksum per record, self-checksummed, located via a fixed footer at EOF)
// is validated arithmetically — contiguity from the first record, bounds
// against the mapping, split-tag range, end-marker agreement — without
// faulting a single record page. decode(i) then decodes exactly one record
// straight out of the mapping through the same budget-enforcing Source the
// streaming reader uses, verifying the record's checksum first, so a v2
// decode is bitwise-equal to what DatasetReader::next would have produced
// and corrupt index entries can never over-read the mapping.
//
// Format-v1 files (no index) fall back to a one-pass offset scan at open:
// the same frames DatasetReader walks, minus the body decode. Random access
// and parallel shard loading then work identically, just without checksums.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "io/pgraph_io.hpp"
#include "model/sample_store.hpp"

namespace pg::io {

class DatasetView {
 public:
  /// Opens `path` read-only and maps it; throws FormatError on malformed
  /// containers (and on I/O failure).
  explicit DatasetView(const std::string& path);

  /// View over bytes owned by the caller (must outlive the view). Same
  /// validation as the file constructor; nothing is copied.
  DatasetView(const void* data, std::size_t size);

  ~DatasetView();
  DatasetView(DatasetView&& other) noexcept;
  DatasetView& operator=(DatasetView&& other) noexcept;
  DatasetView(const DatasetView&) = delete;
  DatasetView& operator=(const DatasetView&) = delete;

  [[nodiscard]] const DatasetMeta& meta() const { return meta_; }
  [[nodiscard]] std::uint16_t format_version() const { return version_; }

  /// Record count.
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Split tag of record `i` — straight from the index (v2) or the scan
  /// (v1); never decodes the record.
  [[nodiscard]] Split split(std::size_t i) const;

  /// True when per-record FNV-1a checksums are available (format v2) and
  /// verified on every decode.
  [[nodiscard]] bool has_checksums() const { return version_ >= 2; }

  /// Decodes record `i` into `sample`, replacing its contents. Thread-safe
  /// (const state + local cursor only) and bitwise-identical to the
  /// sequential DatasetReader decode of the same record. Throws FormatError
  /// with the record ordinal on any corruption, including checksum
  /// mismatches (v2).
  void decode(std::size_t i, model::TrainingSample& sample) const;

  /// File offset of record `i`'s frame ("RECD" marker byte).
  [[nodiscard]] std::uint64_t record_offset(std::size_t i) const;

  /// Whole-frame byte length of record `i` (12-byte header + body).
  [[nodiscard]] std::uint64_t record_length(std::size_t i) const;

 private:
  // reindex copies header/record bytes verbatim out of the mapping.
  friend void reindex_dataset(const std::string& in_path,
                              const std::string& out_path);

  struct Entry {
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    std::uint64_t checksum = 0;
    Split split = Split::kTrain;
  };

  void open_bytes();  // parses header/meta and builds entries_

  const unsigned char* data_ = nullptr;
  std::size_t bytes_ = 0;
  void* mapping_ = nullptr;  // non-null only for the file constructor
  std::size_t mapping_bytes_ = 0;
  DatasetMeta meta_;
  std::uint16_t version_ = 0;
  std::uint64_t records_start_ = 0;
  std::vector<Entry> entries_;
};

/// Decodes every record of `view` into a SampleSet (scalers installed,
/// train/validation partitioned by split tag in record order — the same
/// result as read_sample_set over the equivalent stream, bit for bit).
/// `threads` > 0 pins the worker count; 0 uses the OpenMP default. Workers
/// decode disjoint index shards; assembly order is fixed, so the result is
/// thread-count-independent.
StoredSampleSet load_sample_set(const DatasetView& view, int threads = 0);

/// model::SampleStore over a DatasetView: load(i) decodes record i on
/// demand (out-of-core training never materialises the corpus).
class DatasetSampleStore final : public model::SampleStore {
 public:
  /// Borrows `view`; it must outlive the store.
  explicit DatasetSampleStore(const DatasetView& view) : view_(view) {}

  [[nodiscard]] std::size_t size() const override { return view_.size(); }

  void load(std::size_t i, model::TrainingSample& out) const override {
    view_.decode(i, out);
  }

 private:
  const DatasetView& view_;
};

/// Rewrites the .pgds at `in_path` as format v2 at `out_path`: header and
/// record frames are copied byte-verbatim (only the version field changes),
/// and a fresh index is computed from the record bytes. reindex of a file
/// written by DatasetWriter(v1) is byte-identical to what DatasetWriter(v2)
/// would have produced from the same samples. v2 inputs are re-indexed.
void reindex_dataset(const std::string& in_path, const std::string& out_path);

}  // namespace pg::io
