// Container header/section-table handling plus the graph/sample/dataset
// payload codecs. Every put_* is a template over Sink so the section sizes
// in the table are measured by the same code that emits the bytes.
#include "io/pgraph_io.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <string_view>
#include <utility>
#include <vector>

#include "io/binary.hpp"
#include "io/format_detail.hpp"
#include "model/encoding.hpp"

namespace pg::io {
namespace {

// Constants, SectionEntry/Prologue, and the shared codec declarations live
// in format_detail.hpp so dataset_view.cpp decodes the same bytes with the
// same validation.
using namespace detail;  // NOLINT(google-build-using-namespace)

// --- header / section table ----------------------------------------------

template <class Sink>
void put_header(Sink& sink, PayloadKind kind, std::uint16_t version,
                std::uint32_t section_count) {
  sink.bytes(kMagic, sizeof kMagic);
  put_u16(sink, version);
  put_u16(sink, static_cast<std::uint16_t>(kind));
  put_u64(sink, feature_schema_hash());
  put_u32(sink, section_count);
}

template <class Sink>
void put_section_table(Sink& sink, const std::vector<SectionEntry>& entries) {
  for (const SectionEntry& e : entries) {
    put_u32(sink, e.id);
    put_u64(sink, e.size);
  }
}

// --- graph payloads -------------------------------------------------------

template <class Sink>
void put_graph_nodes(Sink& sink, const graph::ProgramGraph& graph) {
  put_u64(sink, graph.num_nodes());
  for (const graph::GraphNode& n : graph.nodes()) {
    put_u16(sink, static_cast<std::uint16_t>(n.kind));
    put_string(sink, n.label);
  }
}

template <class Sink>
void put_graph_edges(Sink& sink, const graph::ProgramGraph& graph) {
  put_u64(sink, graph.num_edges());
  for (const graph::GraphEdge& e : graph.edges()) {
    put_u32(sink, e.src);
    put_u32(sink, e.dst);
    put_u8(sink, static_cast<std::uint8_t>(e.type));
    put_f32(sink, e.weight);
  }
}

std::vector<graph::GraphNode> get_graph_nodes(Source& src) {
  const std::uint64_t count = get_count(src, "graph node count", 6);
  std::vector<graph::GraphNode> nodes;
  nodes.reserve(std::min(count, kMaxPrealloc));
  for (std::uint64_t i = 0; i < count; ++i) {
    graph::GraphNode n;
    const std::uint16_t kind = get_u16(src);
    if (kind >= frontend::kNumNodeKinds)
      throw FormatError("corrupt graph node: unknown node kind");
    n.kind = static_cast<frontend::NodeKind>(kind);
    n.label = get_string(src);
    nodes.push_back(std::move(n));
  }
  return nodes;
}

std::vector<graph::GraphEdge> get_graph_edges(Source& src) {
  const std::uint64_t count = get_count(src, "graph edge count", 13);
  std::vector<graph::GraphEdge> edges;
  edges.reserve(std::min(count, kMaxPrealloc));
  for (std::uint64_t i = 0; i < count; ++i) {
    graph::GraphEdge e;
    e.src = get_u32(src);
    e.dst = get_u32(src);
    const std::uint8_t type = get_u8(src);
    if (type >= graph::kNumEdgeTypes)
      throw FormatError("corrupt graph edge: unknown edge type");
    e.type = static_cast<graph::EdgeType>(type);
    e.weight = get_f32(src);
    if (!std::isfinite(e.weight) || e.weight < 0.0f)
      throw FormatError("corrupt graph edge: bad weight");
    edges.push_back(e);
  }
  return edges;
}

// --- sample payloads ------------------------------------------------------

template <class Sink>
void put_sample_meta(Sink& sink, const model::TrainingSample& s) {
  put_f32(sink, s.aux[0]);
  put_f32(sink, s.aux[1]);
  put_f64(sink, s.target_scaled);
  put_f64(sink, s.runtime_us);
  put_i32(sink, s.app_id);
  put_string(sink, s.app_name);
  put_string(sink, s.variant);
}

void get_sample_meta(Source& src, model::TrainingSample& s) {
  s.aux[0] = get_f32(src);
  s.aux[1] = get_f32(src);
  s.target_scaled = get_f64(src);
  s.runtime_us = get_f64(src);
  s.app_id = get_i32(src);
  s.app_name = get_string(src);
  s.variant = get_string(src);
}

template <class Sink>
void put_sample_features(Sink& sink, const tensor::Matrix& m) {
  put_u64(sink, m.rows());
  put_u64(sink, m.cols());
  for (float v : m.data()) put_f32(sink, v);
}

tensor::Matrix get_sample_features(Source& src) {
  const std::uint64_t rows = get_count(src, "feature rows");
  const std::uint64_t cols = get_count(src, "feature cols");
  if (cols != model::kNodeFeatureDim)
    throw FormatError("corrupt sample: feature width does not match the "
                      "feature-order contract");
  // rows, cols <= 2^28 (get_count), so rows*cols*4 <= 2^58: no overflow.
  if (rows * cols * sizeof(float) > src.remaining_budget())
    throw FormatError("corrupt sample: feature matrix larger than its section");
  tensor::Matrix m(static_cast<std::size_t>(rows),
                   static_cast<std::size_t>(cols));
  for (float& v : m.data()) v = get_f32(src);
  return m;
}

// The on-disk edge record keeps the legacy array-of-structs shape —
// (src, dst, src_local, dst_local, gate) per edge — so files written by the
// pre-CSR code are byte-identical. The redundant global/dst_local fields
// are re-derived from the CSR arrays on write and re-validated on read.
template <class Sink>
void put_sample_relations(Sink& sink, const nn::RelationalGraph& rg) {
  put_u64(sink, rg.num_nodes);
  put_u32(sink, static_cast<std::uint32_t>(rg.relations.size()));
  for (const nn::RelationEdges& rel : rg.relations) {
    put_u64(sink, rel.num_edges());
    for (std::size_t g = 0; g < rel.num_groups(); ++g) {
      const std::uint32_t dst_local = rel.group_dst[g];
      for (std::uint32_t e = rel.group_offsets[g]; e < rel.group_offsets[g + 1];
           ++e) {
        put_u32(sink, rel.nodes[rel.src_local[e]]);
        put_u32(sink, rel.nodes[dst_local]);
        put_u32(sink, rel.src_local[e]);
        put_u32(sink, dst_local);
        put_f32(sink, rel.gate[e]);
      }
    }
    put_u64(sink, rel.nodes.size());
    for (std::uint32_t v : rel.nodes) put_u32(sink, v);
    put_u64(sink, rel.group_offsets.size());
    for (std::uint32_t v : rel.group_offsets) put_u32(sink, v);
    put_u64(sink, rel.group_dst.size());
    for (std::uint32_t v : rel.group_dst) put_u32(sink, v);
  }
}

/// Reads one relation and verifies every invariant RelationEdges::from_edges
/// guarantees, so corrupt files cannot smuggle out-of-range indices into the
/// RGAT gather/scatter kernels. The redundant on-disk per-edge fields
/// (global src/dst, dst_local) are cross-checked against the CSR arrays and
/// then dropped — the in-memory target is the flat SoA form.
nn::RelationEdges get_relation(Source& src, std::uint64_t num_global_nodes) {
  nn::RelationEdges rel;
  std::vector<std::uint32_t> src_global;
  std::vector<std::uint32_t> dst_global;
  std::vector<std::uint32_t> dst_local;
  const std::uint64_t num_edges = get_count(src, "relation edge count", 20);
  const std::uint64_t prealloc = std::min(num_edges, kMaxPrealloc);
  rel.src_local.reserve(prealloc);
  rel.gate.reserve(prealloc);
  src_global.reserve(prealloc);
  dst_global.reserve(prealloc);
  dst_local.reserve(prealloc);
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    src_global.push_back(get_u32(src));
    dst_global.push_back(get_u32(src));
    rel.src_local.push_back(get_u32(src));
    dst_local.push_back(get_u32(src));
    const float gate = get_f32(src);
    if (!std::isfinite(gate))
      throw FormatError("corrupt relation: non-finite edge gate");
    rel.gate.push_back(gate);
  }
  auto read_u32s = [&src](std::vector<std::uint32_t>& out, std::uint64_t n) {
    out.reserve(std::min(n, kMaxPrealloc));
    for (std::uint64_t i = 0; i < n; ++i) out.push_back(get_u32(src));
  };
  read_u32s(rel.nodes, get_count(src, "relation node count", 4));
  read_u32s(rel.group_offsets, get_count(src, "relation offset count", 4));
  read_u32s(rel.group_dst, get_count(src, "relation group count", 4));

  for (std::size_t i = 0; i < rel.nodes.size(); ++i) {
    if (rel.nodes[i] >= num_global_nodes)
      throw FormatError("corrupt relation: node id out of range");
    if (i > 0 && rel.nodes[i] <= rel.nodes[i - 1])
      throw FormatError("corrupt relation: node list not strictly increasing");
  }
  if (rel.group_offsets.size() != rel.group_dst.size() + 1)
    throw FormatError("corrupt relation: group table shape mismatch");
  if (rel.group_offsets.front() != 0 ||
      rel.group_offsets.back() != rel.num_edges())
    throw FormatError("corrupt relation: group offsets do not span the edges");
  for (std::size_t g = 0; g + 1 < rel.group_offsets.size(); ++g) {
    if (rel.group_offsets[g] >= rel.group_offsets[g + 1])
      throw FormatError("corrupt relation: group offsets not increasing");
    if (g > 0 && rel.group_dst[g] <= rel.group_dst[g - 1])
      throw FormatError("corrupt relation: group dst not increasing");
    if (rel.group_dst[g] >= rel.nodes.size())
      throw FormatError("corrupt relation: group dst out of range");
    for (std::uint32_t i = rel.group_offsets[g]; i < rel.group_offsets[g + 1];
         ++i) {
      if (rel.src_local[i] >= rel.nodes.size() ||
          dst_local[i] >= rel.nodes.size())
        throw FormatError("corrupt relation: local index out of range");
      if (dst_local[i] != rel.group_dst[g])
        throw FormatError("corrupt relation: edge outside its dst group");
      if (src_global[i] != rel.nodes[rel.src_local[i]] ||
          dst_global[i] != rel.nodes[dst_local[i]])
        throw FormatError("corrupt relation: local/global id mismatch");
    }
  }
  return rel;
}

nn::RelationalGraph get_sample_relations(Source& src) {
  nn::RelationalGraph rg;
  rg.num_nodes = static_cast<std::size_t>(get_count(src, "relation graph nodes"));
  const std::uint32_t num_relations = get_u32(src);
  if (num_relations != graph::kNumEdgeTypes)
    throw FormatError("corrupt sample: relation count does not match the "
                      "edge-type contract");
  rg.relations.reserve(num_relations);
  for (std::uint32_t r = 0; r < num_relations; ++r)
    rg.relations.push_back(get_relation(src, rg.num_nodes));
  return rg;
}

/// The three sample sections concatenated without framing — the body shared
/// by .psample sections and .pgds records.
template <class Sink>
void put_sample_body(Sink& sink, const model::TrainingSample& s) {
  put_sample_meta(sink, s);
  put_sample_features(sink, s.graph.features);
  put_sample_relations(sink, s.graph.relations);
}

// --- dataset meta ---------------------------------------------------------

template <class Sink>
void put_dataset_meta(Sink& sink, const DatasetMeta& meta) {
  put_string(sink, meta.platform);
  put_string(sink, meta.representation);
  put_u64(sink, meta.seed);
  put_u8(sink, meta.log_target ? 1 : 0);
  put_f64(sink, meta.child_weight_scale);
  put_f64(sink, meta.target_min);
  put_f64(sink, meta.target_max);
  put_f64(sink, meta.teams_min);
  put_f64(sink, meta.teams_max);
  put_f64(sink, meta.threads_min);
  put_f64(sink, meta.threads_max);
}

void throw_on_stream_error(const std::ostream& os) {
  if (!os) throw FormatError("I/O error while writing");
}

}  // namespace

// --- shared codec definitions (declared in format_detail.hpp) -------------

namespace detail {

FileInfo get_raw_header(Source& src) {
  char magic[sizeof kMagic];
  src.bytes(magic, sizeof magic);
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw FormatError("not a ParaGraph binary container (bad magic)");
  FileInfo info;
  info.version = get_u16(src);
  info.kind = static_cast<PayloadKind>(get_u16(src));
  info.schema_hash = get_u64(src);
  return info;
}

Prologue get_prologue(Source& src, PayloadKind expected,
                      std::uint16_t max_version) {
  Prologue prologue;
  prologue.info = get_raw_header(src);
  const FileInfo& info = prologue.info;
  if (info.version == 0 || info.version > max_version)
    throw FormatError("unsupported format version " +
                      std::to_string(info.version) + " (this build reads " +
                      (max_version > 1 ? "1-" + std::to_string(max_version)
                                       : std::to_string(max_version)) +
                      ")");
  if (info.kind != expected)
    throw FormatError(std::string("wrong payload kind: expected ") +
                      std::string(payload_kind_name(expected)) +
                      ", file holds " +
                      std::string(payload_kind_name(info.kind)));
  if (info.schema_hash != feature_schema_hash())
    throw FormatError(
        "feature-schema mismatch: file was written under a different "
        "node-kind/edge-type contract (see docs/FORMAT.md)");

  const std::uint32_t count = get_u32(src);
  if (count == 0 || count > kMaxSections)
    throw FormatError("corrupt section table: implausible section count");
  prologue.table.resize(count);
  for (SectionEntry& e : prologue.table) {
    e.id = get_u32(src);
    e.size = get_u64(src);
    if (e.size > kMaxSectionBytes)
      throw FormatError("corrupt section table: implausible section size");
    for (const SectionEntry& prev : prologue.table) {
      if (&prev == &e) break;
      if (prev.id == e.id)
        throw FormatError("corrupt section table: duplicate section id");
    }
  }
  return prologue;
}

DatasetMeta get_dataset_meta(Source& src) {
  DatasetMeta meta;
  meta.platform = get_string(src);
  meta.representation = get_string(src);
  meta.seed = get_u64(src);
  meta.log_target = get_u8(src) != 0;
  meta.child_weight_scale = get_f64(src);
  meta.target_min = get_f64(src);
  meta.target_max = get_f64(src);
  meta.teams_min = get_f64(src);
  meta.teams_max = get_f64(src);
  meta.threads_min = get_f64(src);
  meta.threads_max = get_f64(src);
  if (!std::isfinite(meta.child_weight_scale) || meta.child_weight_scale <= 0.0)
    throw FormatError("corrupt dataset meta: bad child weight scale");
  return meta;
}

model::TrainingSample get_sample_body(Source& src) {
  model::TrainingSample s;
  get_sample_meta(src, s);
  s.graph.features = get_sample_features(src);
  s.graph.relations = get_sample_relations(src);
  if (s.graph.features.rows() != s.graph.relations.num_nodes)
    throw FormatError("corrupt sample: feature rows != relation graph nodes");
  return s;
}

}  // namespace detail

std::string_view payload_kind_name(PayloadKind kind) {
  switch (kind) {
    case PayloadKind::kGraph: return "graph";
    case PayloadKind::kSample: return "sample";
    case PayloadKind::kDataset: return "dataset";
    case PayloadKind::kAnnIndex: return "ann-index";
  }
  return "unknown";
}

std::uint64_t feature_schema_hash() {
  // FNV-1a over the feature-order contract; any enum rename/reorder/resize
  // lands on a different hash.
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::string_view text) {
    for (const char c : text) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ull;
    }
    h ^= 0xff;  // separator so concatenated names can't collide
    h *= 0x100000001b3ull;
  };
  mix("pg-feature-schema-v1");
  mix(std::to_string(model::kNodeFeatureDim));
  for (std::size_t k = 0; k < frontend::kNumNodeKinds; ++k)
    mix(frontend::node_kind_name(static_cast<frontend::NodeKind>(k)));
  for (std::size_t t = 0; t < graph::kNumEdgeTypes; ++t)
    mix(graph::edge_type_name(static_cast<graph::EdgeType>(t)));
  return h;
}

// --- graphs ---------------------------------------------------------------

void write_graph(std::ostream& os, const graph::ProgramGraph& graph) {
  CountingSink nodes_size, edges_size;
  put_graph_nodes(nodes_size, graph);
  put_graph_edges(edges_size, graph);

  StreamSink sink{os};
  put_header(sink, PayloadKind::kGraph, kFormatVersion, 2);
  put_section_table(sink, {{kSecGraphNodes, nodes_size.count},
                           {kSecGraphEdges, edges_size.count}});
  put_graph_nodes(sink, graph);
  put_graph_edges(sink, graph);
  throw_on_stream_error(os);
}

graph::ProgramGraph read_graph(std::istream& is) {
  Source src(is);
  const auto prologue = get_prologue(src, PayloadKind::kGraph, kFormatVersion);

  std::vector<graph::GraphNode> nodes;
  std::vector<graph::GraphEdge> edges;
  bool have_nodes = false;
  bool have_edges = false;
  for (const SectionEntry& entry : prologue.table) {
    src.push_budget(entry.size);
    switch (entry.id) {
      case kSecGraphNodes:
        nodes = get_graph_nodes(src);
        have_nodes = true;
        break;
      case kSecGraphEdges:
        edges = get_graph_edges(src);
        have_edges = true;
        break;
      default:
        src.skip(entry.size);  // forward-compatible: unknown section
    }
    src.pop_budget();
  }
  if (!have_nodes || !have_edges)
    throw FormatError("corrupt graph file: missing nodes/edges section");

  graph::ProgramGraph graph;
  for (graph::GraphNode& n : nodes) graph.add_node(n.kind, std::move(n.label));
  for (const graph::GraphEdge& e : edges) {
    if (e.src >= graph.num_nodes() || e.dst >= graph.num_nodes())
      throw FormatError("corrupt graph edge: endpoint out of range");
    graph.add_edge(e.src, e.dst, e.type, e.weight);
  }
  return graph;
}

// --- samples --------------------------------------------------------------

void write_sample(std::ostream& os, const model::TrainingSample& sample) {
  CountingSink meta_size, features_size, relations_size;
  put_sample_meta(meta_size, sample);
  put_sample_features(features_size, sample.graph.features);
  put_sample_relations(relations_size, sample.graph.relations);

  StreamSink sink{os};
  put_header(sink, PayloadKind::kSample, kFormatVersion, 3);
  put_section_table(sink, {{kSecSampleMeta, meta_size.count},
                           {kSecSampleFeatures, features_size.count},
                           {kSecSampleRelations, relations_size.count}});
  put_sample_meta(sink, sample);
  put_sample_features(sink, sample.graph.features);
  put_sample_relations(sink, sample.graph.relations);
  throw_on_stream_error(os);
}

model::TrainingSample read_sample(std::istream& is) {
  Source src(is);
  const auto prologue = get_prologue(src, PayloadKind::kSample, kFormatVersion);

  model::TrainingSample sample;
  bool have_meta = false;
  bool have_features = false;
  bool have_relations = false;
  for (const SectionEntry& entry : prologue.table) {
    src.push_budget(entry.size);
    switch (entry.id) {
      case kSecSampleMeta:
        get_sample_meta(src, sample);
        have_meta = true;
        break;
      case kSecSampleFeatures:
        sample.graph.features = get_sample_features(src);
        have_features = true;
        break;
      case kSecSampleRelations:
        sample.graph.relations = get_sample_relations(src);
        have_relations = true;
        break;
      default:
        src.skip(entry.size);
    }
    src.pop_budget();
  }
  if (!have_meta || !have_features || !have_relations)
    throw FormatError("corrupt sample file: missing required section");
  if (sample.graph.features.rows() != sample.graph.relations.num_nodes)
    throw FormatError("corrupt sample: feature rows != relation graph nodes");
  return sample;
}

// --- datasets -------------------------------------------------------------

DatasetMeta DatasetMeta::scalers_from(const model::SampleSet& set) {
  DatasetMeta meta;
  meta.log_target = set.log_target;
  meta.child_weight_scale = set.child_weight_scale;
  meta.target_min = set.target_scaler.min_value();
  meta.target_max = set.target_scaler.max_value();
  meta.teams_min = set.teams_scaler.min_value();
  meta.teams_max = set.teams_scaler.max_value();
  meta.threads_min = set.threads_scaler.min_value();
  meta.threads_max = set.threads_scaler.max_value();
  return meta;
}

void DatasetMeta::apply_scalers(model::SampleSet& set) const {
  set.log_target = log_target;
  set.child_weight_scale = child_weight_scale;
  set.target_scaler.fit_bounds(target_min, target_max);
  set.teams_scaler.fit_bounds(teams_min, teams_max);
  set.threads_scaler.fit_bounds(threads_min, threads_max);
}

DatasetWriter::DatasetWriter(std::ostream& os, const DatasetMeta& meta,
                             std::uint16_t format_version)
    : os_(os), version_(format_version) {
  if (version_ == 0 || version_ > kDatasetFormatVersion)
    throw FormatError("unsupported dataset format version " +
                      std::to_string(format_version) + " (this build writes " +
                      "1-" + std::to_string(kDatasetFormatVersion) + ")");
  CountingSink meta_size;
  put_dataset_meta(meta_size, meta);

  StreamSink sink{os_};
  put_header(sink, PayloadKind::kDataset, version_, 1);
  put_section_table(sink, {{kSecDatasetMeta, meta_size.count}});
  put_dataset_meta(sink, meta);
  throw_on_stream_error(os_);
  // Mirror what was just emitted to know where the first record lands —
  // the v2 index stores absolute file offsets.
  CountingSink emitted;
  put_header(emitted, PayloadKind::kDataset, version_, 1);
  put_section_table(emitted, {{kSecDatasetMeta, meta_size.count}});
  offset_ = emitted.count + meta_size.count;
}

DatasetWriter::~DatasetWriter() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; an explicit finish() surfaces errors.
  }
}

void DatasetWriter::append(const model::TrainingSample& sample, Split split) {
  if (finished_) throw FormatError("DatasetWriter: append after finish");
  // One measuring pass yields both the frame size and (for v2) the index
  // checksum of the exact body bytes about to be emitted.
  FnvCountingSink body;
  put_u8(body, static_cast<std::uint8_t>(split));
  put_sample_body(body, sample);

  StreamSink sink{os_};
  put_u32(sink, kRecordMarker);
  put_u64(sink, body.count);
  put_u8(sink, static_cast<std::uint8_t>(split));
  put_sample_body(sink, sample);
  throw_on_stream_error(os_);
  const std::uint64_t frame = 12 + body.count;  // marker + size field + body
  if (version_ >= 2)
    index_.push_back(IndexEntry{offset_, frame, body.hash, split});
  offset_ += frame;
  ++records_;
}

void DatasetWriter::finish() {
  if (finished_) return;
  StreamSink sink{os_};
  put_u32(sink, kEndMarker);
  put_u64(sink, records_);
  offset_ += 12;
  if (version_ >= 2) {
    // The index section starts right after the end marker; the fixed-size
    // footer at EOF points back at it so a reader can find it by seeking.
    put_dataset_index(sink, index_);
    put_index_footer(sink, offset_, index_section_bytes(index_.size()));
  }
  throw_on_stream_error(os_);
  finished_ = true;
}

DatasetReader::DatasetReader(std::istream& is) : is_(is) {
  Source src(is_);
  const auto prologue =
      get_prologue(src, PayloadKind::kDataset, kDatasetFormatVersion);
  version_ = prologue.info.version;
  bool have_meta = false;
  for (const SectionEntry& entry : prologue.table) {
    src.push_budget(entry.size);
    if (entry.id == kSecDatasetMeta) {
      meta_ = get_dataset_meta(src);
      have_meta = true;
    } else {
      src.skip(entry.size);
    }
    src.pop_budget();
  }
  if (!have_meta)
    throw FormatError("corrupt dataset file: missing meta section");
}

bool DatasetReader::next(model::TrainingSample& sample, Split& split) {
  if (done_) return false;
  Source src(is_);
  std::uint64_t body = 0;
  // Frame-header corruption (bad/truncated marker, implausible size) names
  // the record ordinal exactly like body-level corruption below does —
  // "which sample of the million" must never depend on where the bytes died.
  try {
    const std::uint32_t marker = get_u32(src);
    if (marker == kEndMarker) {
      const std::uint64_t declared = get_u64(src);
      if (declared != records_)
        throw FormatError("corrupt dataset file: record count mismatch at end "
                          "marker (dropped tail?)");
      done_ = true;
      return false;
    }
    if (marker != kRecordMarker)
      throw FormatError("bad record marker");
    body = get_u64(src);
    if (body > kMaxSectionBytes)
      throw FormatError("implausible record size");
  } catch (const FormatError& e) {
    // The end-marker count mismatch is a whole-file diagnostic, not a
    // per-record one — let it through untouched.
    if (std::string_view(e.what()).find("end marker") != std::string_view::npos)
      throw;
    throw FormatError("corrupt dataset record " + std::to_string(records_) +
                      " (frame header): " + e.what());
  }
  // Decode failures inside the record body (truncation, budget over/underrun,
  // corrupt counts) carry the record index — "which sample of the million"
  // is the first thing a corpus-corruption report needs.
  try {
    src.push_budget(body);
    const std::uint8_t split_raw = get_u8(src);
    if (split_raw > static_cast<std::uint8_t>(Split::kValidation))
      throw FormatError("bad split tag");
    split = static_cast<Split>(split_raw);
    sample = get_sample_body(src);
    src.pop_budget();
  } catch (const FormatError& e) {
    throw FormatError("corrupt dataset record " + std::to_string(records_) +
                      " (" + std::to_string(body) + "-byte frame): " +
                      e.what());
  }
  ++records_;
  return true;
}

void write_sample_set(std::ostream& os, const model::SampleSet& set,
                      const std::string& platform,
                      const std::string& representation, std::uint64_t seed,
                      std::uint16_t format_version) {
  DatasetMeta meta = DatasetMeta::scalers_from(set);
  meta.platform = platform;
  meta.representation = representation;
  meta.seed = seed;
  DatasetWriter writer(os, meta, format_version);
  for (const model::TrainingSample& s : set.train)
    writer.append(s, Split::kTrain);
  for (const model::TrainingSample& s : set.validation)
    writer.append(s, Split::kValidation);
  writer.finish();
}

StoredSampleSet read_sample_set(std::istream& is) {
  DatasetReader reader(is);
  StoredSampleSet out;
  out.meta = reader.meta();
  out.meta.apply_scalers(out.set);
  model::TrainingSample sample;
  Split split = Split::kTrain;
  while (reader.next(sample, split)) {
    if (split == Split::kTrain)
      out.set.train.push_back(std::move(sample));
    else
      out.set.validation.push_back(std::move(sample));
    sample = {};
  }
  return out;
}

// --- file helpers ---------------------------------------------------------

namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw FormatError("cannot open for writing: " + path);
  return os;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw FormatError("cannot open for reading: " + path);
  return is;
}

}  // namespace

void write_graph_file(const std::string& path, const graph::ProgramGraph& graph) {
  auto os = open_out(path);
  write_graph(os, graph);
}

graph::ProgramGraph read_graph_file(const std::string& path) {
  auto is = open_in(path);
  return read_graph(is);
}

void write_sample_file(const std::string& path,
                       const model::TrainingSample& sample) {
  auto os = open_out(path);
  write_sample(os, sample);
}

model::TrainingSample read_sample_file(const std::string& path) {
  auto is = open_in(path);
  return read_sample(is);
}

void write_sample_set_file(const std::string& path, const model::SampleSet& set,
                           const std::string& platform,
                           const std::string& representation,
                           std::uint64_t seed, std::uint16_t format_version) {
  auto os = open_out(path);
  write_sample_set(os, set, platform, representation, seed, format_version);
}

StoredSampleSet read_sample_set_file(const std::string& path) {
  auto is = open_in(path);
  return read_sample_set(is);
}

FileInfo probe_file(const std::string& path) {
  auto is = open_in(path);
  Source src(is);
  return get_raw_header(src);
}

}  // namespace pg::io
