// DatasetView implementation: cold open validates the v2 index (or scans v1
// frames) without decoding a record; decode(i) decodes exactly one record
// out of the mapping. See dataset_view.hpp for the contract.
#include "io/dataset_view.hpp"

#include <fcntl.h>
#include <omp.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <exception>
#include <fstream>
#include <string_view>
#include <utility>

#include "io/format_detail.hpp"
#include "support/check.hpp"

namespace pg::io {

namespace {

[[noreturn]] void throw_record_error(std::size_t ordinal, std::uint64_t body,
                                     std::uint64_t offset, const char* what) {
  // Ordinal + frame size + absolute byte offset: "which sample of the
  // million, and where in the file" is the whole of a corruption report.
  throw FormatError("corrupt dataset record " + std::to_string(ordinal) +
                    " (" + std::to_string(body) + "-byte frame at byte offset " +
                    std::to_string(offset) + "): " + what);
}

}  // namespace

DatasetView::DatasetView(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw FormatError("cannot open for reading: " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw FormatError("cannot stat: " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    throw FormatError("truncated file: unexpected end of data");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) throw FormatError("cannot mmap: " + path);
  mapping_ = map;
  mapping_bytes_ = size;
  data_ = static_cast<const unsigned char*>(map);
  bytes_ = size;
  try {
    open_bytes();
  } catch (...) {
    ::munmap(mapping_, mapping_bytes_);
    throw;  // the destructor will not run for a throwing constructor
  }
}

DatasetView::DatasetView(const void* data, std::size_t size)
    : data_(static_cast<const unsigned char*>(data)), bytes_(size) {
  open_bytes();
}

DatasetView::~DatasetView() {
  if (mapping_ != nullptr) ::munmap(mapping_, mapping_bytes_);
}

DatasetView::DatasetView(DatasetView&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      bytes_(std::exchange(other.bytes_, 0)),
      mapping_(std::exchange(other.mapping_, nullptr)),
      mapping_bytes_(std::exchange(other.mapping_bytes_, 0)),
      meta_(std::move(other.meta_)),
      version_(other.version_),
      records_start_(other.records_start_),
      entries_(std::move(other.entries_)) {}

DatasetView& DatasetView::operator=(DatasetView&& other) noexcept {
  if (this != &other) {
    if (mapping_ != nullptr) ::munmap(mapping_, mapping_bytes_);
    data_ = std::exchange(other.data_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
    mapping_ = std::exchange(other.mapping_, nullptr);
    mapping_bytes_ = std::exchange(other.mapping_bytes_, 0);
    meta_ = std::move(other.meta_);
    version_ = other.version_;
    records_start_ = other.records_start_;
    entries_ = std::move(other.entries_);
  }
  return *this;
}

void DatasetView::open_bytes() {
  namespace d = detail;
  Source src(data_, bytes_);
  const d::Prologue prologue =
      d::get_prologue(src, PayloadKind::kDataset, kDatasetFormatVersion);
  version_ = prologue.info.version;
  bool have_meta = false;
  for (const d::SectionEntry& entry : prologue.table) {
    src.push_budget(entry.size);
    if (entry.id == d::kSecDatasetMeta) {
      meta_ = d::get_dataset_meta(src);
      have_meta = true;
    } else {
      src.skip(entry.size);
    }
    src.pop_budget();
  }
  if (!have_meta)
    throw FormatError("corrupt dataset file: missing meta section");
  records_start_ = src.consumed();

  if (version_ >= 2) {
    // --- v2: locate the index via the footer; validate arithmetically ---
    // (no record page is touched — only the footer, the index itself, and
    // the 12 end-marker bytes directly before it).
    if (bytes_ < records_start_ + 12 + d::kIndexFixedBytes +
                     d::kIndexFooterBytes)
      throw FormatError(
          "corrupt dataset file: too small to hold an end marker, index "
          "section, and footer");
    Source foot(data_ + bytes_ - d::kIndexFooterBytes, d::kIndexFooterBytes);
    const std::uint64_t index_offset = get_u64(foot);
    const std::uint64_t index_size = get_u64(foot);
    if (get_u32(foot) != d::kIndexFooterMagic)
      throw FormatError("corrupt dataset file: bad index footer magic");
    if (index_size < d::kIndexFixedBytes ||
        index_size > bytes_ - d::kIndexFooterBytes ||
        index_offset != bytes_ - d::kIndexFooterBytes - index_size ||
        index_offset < records_start_ + 12)
      throw FormatError(
          "corrupt dataset file: index footer does not describe a section "
          "inside the file");

    Source isrc(data_ + index_offset, static_cast<std::size_t>(index_size));
    if (get_u32(isrc) != d::kIndexMarker)
      throw FormatError("corrupt dataset file: bad index section marker");
    const std::uint64_t count = get_u64(isrc);
    // Validate the count against the section's actual byte budget *before*
    // sizing any container for it (hostile-input rule: corrupt counts must
    // fail before they allocate).
    if (count != (index_size - d::kIndexFixedBytes) / d::kIndexEntryBytes ||
        count * d::kIndexEntryBytes != index_size - d::kIndexFixedBytes)
      throw FormatError(
          "corrupt dataset file: index count does not match the index "
          "section size");
    if (count > kMaxReasonableCount)
      throw FormatError("corrupt count field: index record count");
    const std::uint64_t stored_hash = [&] {
      Source tail(data_ + index_offset + index_size - 8, 8);
      return get_u64(tail);
    }();
    if (stored_hash !=
        d::fnv1a(data_ + index_offset + 12,
                 static_cast<std::size_t>(count * d::kIndexEntryBytes)))
      throw FormatError(
          "corrupt dataset file: index self-checksum mismatch (index bytes "
          "were altered; 'index' section at byte offset " +
          std::to_string(index_offset) + ")");

    entries_.reserve(static_cast<std::size_t>(count));
    std::uint64_t expect = records_start_;
    const std::uint64_t records_end = index_offset - 12;  // end-marker frame
    for (std::uint64_t i = 0; i < count; ++i) {
      Entry e;
      e.offset = get_u64(isrc);
      e.length = get_u64(isrc);
      const std::uint8_t split_raw = get_u8(isrc);
      e.checksum = get_u64(isrc);
      const std::string at = " in index entry " + std::to_string(i);
      if (e.offset != expect)
        throw FormatError("corrupt dataset file: record offset not "
                          "contiguous" + at);
      if (e.length < 13 || e.length > d::kMaxSectionBytes + 12)
        throw FormatError("corrupt dataset file: implausible record length" +
                          at);
      if (split_raw > static_cast<std::uint8_t>(Split::kValidation))
        throw FormatError("corrupt dataset file: bad split tag" + at);
      e.split = static_cast<Split>(split_raw);
      expect += e.length;  // <= records_end + 2^30 + 12: cannot overflow
      if (expect > records_end)
        throw FormatError("corrupt dataset file: record extends past the "
                          "record stream" + at);
      entries_.push_back(e);
    }
    if (expect != records_end)
      throw FormatError(
          "corrupt dataset file: index does not span the record stream");
    Source dend(data_ + records_end, 12);
    if (get_u32(dend) != d::kEndMarker)
      throw FormatError("corrupt dataset file: missing end marker before "
                        "the index");
    if (get_u64(dend) != count)
      throw FormatError("corrupt dataset file: record count mismatch at end "
                        "marker (dropped tail?)");
    return;
  }

  // --- v1 fallback: one-pass offset scan over the record frames ---------
  bool done = false;
  while (!done) {
    const std::size_t ordinal = entries_.size();
    try {
      const std::uint32_t marker = get_u32(src);
      if (marker == d::kEndMarker) {
        const std::uint64_t declared = get_u64(src);
        if (declared != entries_.size())
          throw FormatError("corrupt dataset file: record count mismatch at "
                            "end marker (dropped tail?)");
        if (src.consumed() != bytes_)
          throw FormatError(
              "corrupt dataset file: trailing bytes after the end marker");
        done = true;
        continue;
      }
      if (marker != d::kRecordMarker) throw FormatError("bad record marker");
      const std::uint64_t body = get_u64(src);
      if (body == 0 || body > d::kMaxSectionBytes)
        throw FormatError("implausible record size");
      Entry e;
      e.offset = src.consumed() - 12;
      e.length = 12 + body;
      const std::uint8_t split_raw = get_u8(src);
      if (split_raw > static_cast<std::uint8_t>(Split::kValidation))
        throw FormatError("bad split tag");
      e.split = static_cast<Split>(split_raw);
      src.skip(body - 1);
      entries_.push_back(e);
    } catch (const FormatError& e) {
      if (std::string_view(e.what()).find("end marker") !=
          std::string_view::npos)
        throw;
      if (std::string_view(e.what()).find("trailing bytes") !=
          std::string_view::npos)
        throw;
      throw FormatError("corrupt dataset record " + std::to_string(ordinal) +
                        " (frame header): " + e.what());
    }
  }
}

Split DatasetView::split(std::size_t i) const {
  check(i < entries_.size(), "DatasetView: record index out of range");
  return entries_[i].split;
}

std::uint64_t DatasetView::record_offset(std::size_t i) const {
  check(i < entries_.size(), "DatasetView: record index out of range");
  return entries_[i].offset;
}

std::uint64_t DatasetView::record_length(std::size_t i) const {
  check(i < entries_.size(), "DatasetView: record index out of range");
  return entries_[i].length;
}

void DatasetView::decode(std::size_t i, model::TrainingSample& sample) const {
  namespace d = detail;
  check(i < entries_.size(), "DatasetView: record index out of range");
  const Entry& e = entries_[i];
  const unsigned char* frame = data_ + e.offset;
  const std::uint64_t body = e.length - 12;
  try {
    Source src(frame, static_cast<std::size_t>(e.length));
    if (get_u32(src) != d::kRecordMarker)
      throw FormatError("bad record marker");
    if (get_u64(src) != body)
      throw FormatError("frame size field disagrees with the index");
    if (version_ >= 2 &&
        d::fnv1a(frame + 12, static_cast<std::size_t>(body)) != e.checksum)
      throw FormatError(
          "record checksum mismatch (body bytes do not match the index)");
    src.push_budget(body);
    const std::uint8_t split_raw = get_u8(src);
    if (split_raw > static_cast<std::uint8_t>(Split::kValidation))
      throw FormatError("bad split tag");
    if (split_raw != static_cast<std::uint8_t>(e.split))
      throw FormatError("split tag disagrees with the index");
    sample = d::get_sample_body(src);
    src.pop_budget();
  } catch (const FormatError& err) {
    throw_record_error(i, body, e.offset, err.what());
  }
}

StoredSampleSet load_sample_set(const DatasetView& view, int threads) {
  StoredSampleSet out;
  out.meta = view.meta();
  out.meta.apply_scalers(out.set);
  const std::size_t n = view.size();
  std::vector<model::TrainingSample> all(n);

  // Disjoint shards decode concurrently; exceptions must not escape the
  // parallel region, so the lowest-index failure is captured and rethrown —
  // the same error single-threaded decoding would have hit first.
  std::exception_ptr first_error;
  std::size_t first_error_index = n;
  const int team = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel for schedule(static) num_threads(team)
  for (std::int64_t idx = 0; idx < static_cast<std::int64_t>(n); ++idx) {
    const auto i = static_cast<std::size_t>(idx);
    try {
      view.decode(i, all[i]);
    } catch (...) {
#pragma omp critical(pg_dataset_view_load_error)
      {
        if (first_error == nullptr || i < first_error_index) {
          first_error = std::current_exception();
          first_error_index = i;
        }
      }
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  // Assembly stays in record order whatever the thread count, so the result
  // is bit-for-bit the sequential read.
  for (std::size_t i = 0; i < n; ++i) {
    if (view.split(i) == Split::kTrain)
      out.set.train.push_back(std::move(all[i]));
    else
      out.set.validation.push_back(std::move(all[i]));
  }
  return out;
}

void reindex_dataset(const std::string& in_path, const std::string& out_path) {
  namespace d = detail;
  const DatasetView view(in_path);
  std::ofstream os(out_path, std::ios::binary);
  if (!os) throw FormatError("cannot open for writing: " + out_path);
  StreamSink sink{os};

  // Header + section table + meta copied verbatim, only the u16 version
  // field (offset 8) patched to v2 — the prologue length is unchanged, so
  // every record keeps its original offset.
  sink.bytes(view.data_, 8);
  put_u16(sink, kDatasetFormatVersion);
  sink.bytes(view.data_ + 10, static_cast<std::size_t>(view.records_start_) - 10);

  std::vector<d::IndexEntry> index;
  index.reserve(view.size());
  std::uint64_t offset = view.records_start_;
  for (std::size_t i = 0; i < view.size(); ++i) {
    const std::uint64_t length = view.record_length(i);
    const unsigned char* frame = view.data_ + view.record_offset(i);
    sink.bytes(frame, static_cast<std::size_t>(length));
    index.push_back(d::IndexEntry{
        offset, length,
        d::fnv1a(frame + 12, static_cast<std::size_t>(length - 12)),
        view.split(i)});
    offset += length;
  }

  put_u32(sink, d::kEndMarker);
  put_u64(sink, index.size());
  offset += 12;
  d::put_dataset_index(sink, index);
  d::put_index_footer(sink, offset, d::index_section_bytes(index.size()));
  if (!os) throw FormatError("I/O error while writing: " + out_path);
}

}  // namespace pg::io
