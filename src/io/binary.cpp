// Source: truncation-checked, budget-enforcing byte reader over either an
// istream or an in-memory byte range (the mmap path).
#include "io/binary.hpp"

#include <array>
#include <cstring>

namespace pg::io {

void Source::bytes(void* out, std::size_t n) {
  if (budget_active_ && consumed_ + n > budget_end_)
    throw FormatError("section overrun: payload larger than its declared size");
  if (data_ != nullptr) {
    if (n > size_ - static_cast<std::size_t>(consumed_))
      throw FormatError("truncated file: unexpected end of data");
    std::memcpy(out, data_ + consumed_, n);
    consumed_ += n;
    return;
  }
  is_->read(static_cast<char*>(out), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(is_->gcount()) != n || !*is_)
    throw FormatError("truncated file: unexpected end of data");
  consumed_ += n;
}

void Source::skip(std::uint64_t n) {
  if (data_ != nullptr) {
    // Memory mode advances without copying; same budget/truncation checks
    // as bytes().
    if (budget_active_ && consumed_ + n > budget_end_)
      throw FormatError(
          "section overrun: payload larger than its declared size");
    if (n > size_ - static_cast<std::size_t>(consumed_))
      throw FormatError("truncated file: unexpected end of data");
    consumed_ += n;
    return;
  }
  std::array<char, 4096> scratch;
  while (n > 0) {
    const std::size_t chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(n, scratch.size()));
    bytes(scratch.data(), chunk);
    n -= chunk;
  }
}

void Source::push_budget(std::uint64_t n) {
  if (budget_active_) throw FormatError("internal: nested section budgets");
  budget_end_ = consumed_ + n;
  budget_active_ = true;
}

void Source::pop_budget() {
  if (!budget_active_) throw FormatError("internal: no active section budget");
  if (consumed_ != budget_end_)
    throw FormatError("section underrun: payload smaller than its declared size");
  budget_active_ = false;
}

std::uint8_t get_u8(Source& src) {
  std::uint8_t b = 0;
  src.bytes(&b, 1);
  return b;
}

std::uint16_t get_u16(Source& src) {
  std::uint8_t b[2];
  src.bytes(b, sizeof b);
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t get_u32(Source& src) {
  std::uint8_t b[4];
  src.bytes(b, sizeof b);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t get_u64(Source& src) {
  std::uint8_t b[8];
  src.bytes(b, sizeof b);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

std::int32_t get_i32(Source& src) {
  return static_cast<std::int32_t>(get_u32(src));
}

std::int64_t get_i64(Source& src) {
  return static_cast<std::int64_t>(get_u64(src));
}

float get_f32(Source& src) { return std::bit_cast<float>(get_u32(src)); }

double get_f64(Source& src) { return std::bit_cast<double>(get_u64(src)); }

std::string get_string(Source& src) {
  const std::uint32_t len = get_u32(src);
  // Checking against the section budget (not just the global cap) keeps a
  // corrupt length from allocating anything before the read would fail.
  if (len > kMaxReasonableCount || len > src.remaining_budget())
    throw FormatError("corrupt string length");
  std::string s(len, '\0');
  if (len > 0) src.bytes(s.data(), len);
  return s;
}

std::uint64_t get_count(Source& src, const char* what) {
  const std::uint64_t v = get_u64(src);
  if (v > kMaxReasonableCount)
    throw FormatError(std::string("corrupt count field: ") + what);
  return v;
}

std::uint64_t get_count(Source& src, const char* what,
                        std::uint64_t min_bytes_per_element) {
  const std::uint64_t count = get_count(src, what);
  // count * min_bytes_per_element > remaining, without overflow.
  if (min_bytes_per_element > 0 &&
      count > src.remaining_budget() / min_bytes_per_element)
    throw FormatError(std::string("corrupt count field: ") + what +
                      " larger than its section");
  return count;
}

}  // namespace pg::io
