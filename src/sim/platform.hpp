// Machine descriptors for the four accelerators of the paper's evaluation
// (Summit: IBM POWER9 + NVIDIA V100; Corona: AMD EPYC 7401 + AMD MI50).
//
// The numbers are public spec-sheet values derated to sustained-throughput
// estimates for compiler-generated OpenMP code; the simulator consumes them
// through a roofline-style cost model (runtime_simulator.hpp). Absolute
// accuracy is not the goal — the paper's evaluation only needs runtimes
// that scale correctly with work, parallel configuration, memory traffic,
// and host-device transfers, and that differ across the four devices.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pg::sim {

enum class DeviceKind : std::uint8_t { kCpu, kGpu };

struct Platform {
  std::string name;          // e.g. "NVIDIA V100 (GPU)"
  std::string cluster;       // "Summit" / "Corona"
  DeviceKind kind = DeviceKind::kCpu;

  int cores = 1;             // CPU cores, or GPU SMs/CUs
  double clock_ghz = 1.0;
  /// Sustained useful FP operations per cycle per core (CPU) or per SM/CU
  /// (GPU) for compiler-generated loops — far below peak on purpose.
  double flops_per_cycle_per_core = 2.0;
  double dram_bandwidth_gbs = 100.0;
  double cache_mb = 32.0;    // last-level cache (CPU) / L2 (GPU)

  // GPU-only knobs (0 / unused for CPUs).
  double transfer_bandwidth_gbs = 0.0;  // host <-> device
  double transfer_latency_us = 0.0;
  double kernel_launch_us = 0.0;        // offload launch / fork overhead
  int lanes_per_core = 1;    // concurrent lanes per SM/CU the model assumes

  // CPU-only knobs.
  double fork_join_us = 0.0; // parallel-region fork/join cost per region
  double single_core_bw_fraction = 0.25;  // 1 core can't saturate DRAM

  [[nodiscard]] double peak_flops() const {
    return static_cast<double>(cores) * clock_ghz * 1e9 * flops_per_cycle_per_core;
  }
  [[nodiscard]] double total_lanes() const {
    return static_cast<double>(cores) * lanes_per_core;
  }
};

Platform summit_power9();
Platform summit_v100();
Platform corona_epyc7401();
Platform corona_mi50();

/// The four platforms in the paper's table order (POWER9, V100, EPYC, MI50).
std::vector<Platform> all_platforms();

}  // namespace pg::sim
