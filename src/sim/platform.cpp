// The four accelerator descriptors (POWER9, V100, EPYC7401, MI50) with
// peak-rate/bandwidth/latency numbers from public spec sheets.
#include "sim/platform.hpp"

namespace pg::sim {

Platform summit_power9() {
  Platform p;
  p.name = "IBM POWER9 (CPU)";
  p.cluster = "Summit";
  p.kind = DeviceKind::kCpu;
  p.cores = 22;
  p.clock_ghz = 3.45;
  p.flops_per_cycle_per_core = 2.2;  // scalar/partially vectorised loops
  p.dram_bandwidth_gbs = 110.0;
  p.cache_mb = 110.0;
  p.fork_join_us = 9.0;
  p.single_core_bw_fraction = 0.22;
  return p;
}

Platform summit_v100() {
  Platform p;
  p.name = "NVIDIA V100 (GPU)";
  p.cluster = "Summit";
  p.kind = DeviceKind::kGpu;
  p.cores = 80;  // SMs
  p.clock_ghz = 1.53;
  p.flops_per_cycle_per_core = 28.0;  // sustained DP for OpenMP offload
  p.dram_bandwidth_gbs = 780.0;
  p.cache_mb = 6.0;
  p.transfer_bandwidth_gbs = 42.0;  // NVLink2, sustained
  p.transfer_latency_us = 9.0;
  p.kernel_launch_us = 26.0;        // libomptarget + CUDA launch
  p.lanes_per_core = 128;
  return p;
}

Platform corona_epyc7401() {
  Platform p;
  p.name = "AMD EPYC7401 (CPU)";
  p.cluster = "Corona";
  p.kind = DeviceKind::kCpu;
  p.cores = 24;
  p.clock_ghz = 2.8;
  p.flops_per_cycle_per_core = 2.0;
  p.dram_bandwidth_gbs = 120.0;
  p.cache_mb = 64.0;
  p.fork_join_us = 7.0;
  p.single_core_bw_fraction = 0.20;
  return p;
}

Platform corona_mi50() {
  Platform p;
  p.name = "AMD MI50 (GPU)";
  p.cluster = "Corona";
  p.kind = DeviceKind::kGpu;
  p.cores = 60;  // CUs
  p.clock_ghz = 1.725;
  p.flops_per_cycle_per_core = 24.0;
  p.dram_bandwidth_gbs = 850.0;
  p.cache_mb = 4.0;
  p.transfer_bandwidth_gbs = 11.0;  // PCIe gen3 x16, sustained
  p.transfer_latency_us = 14.0;
  p.kernel_launch_us = 34.0;        // ROCm offload overhead
  p.lanes_per_core = 128;
  return p;
}

std::vector<Platform> all_platforms() {
  return {summit_power9(), summit_v100(), corona_epyc7401(), corona_mi50()};
}

}  // namespace pg::sim
