// Static kernel characterisation: walks the AST of an instantiated kernel
// and extracts the quantities the runtime simulator prices (operation mix,
// dynamic memory traffic, access contiguity, branching, parallel structure,
// mapped transfer volume).
//
// The same walk also powers the COMPOFF baseline's feature vector — COMPOFF
// is exactly "operation counts -> MLP".
#pragma once

#include <cstdint>
#include <string>

#include "frontend/ast.hpp"

namespace pg::sim {

struct KernelProfile {
  // Dynamic operation counts (execution-count weighted, whole kernel).
  double flops = 0.0;
  double int_ops = 0.0;
  double transcendental = 0.0;  // sqrt/exp/log/pow/sin/cos calls
  double loads = 0.0;           // array-element reads
  double stores = 0.0;          // array-element writes
  double bytes_accessed = 0.0;  // (loads + stores) x element size

  // Data footprint: total declared bytes of every array the kernel touches.
  double footprint_bytes = 0.0;

  // Host <-> device traffic from map clauses (0 without map clauses).
  double transfer_to_bytes = 0.0;
  double transfer_from_bytes = 0.0;

  /// Fraction of dynamic accesses whose fastest-varying index is the
  /// innermost loop variable (unit stride).
  double contiguous_fraction = 1.0;
  /// Fraction of dynamic work under if/else branches.
  double branch_fraction = 0.0;

  // Parallel structure.
  bool offload = false;          // target teams ... vs plain parallel for
  bool has_directive = false;
  int collapse_depth = 1;        // 1 = no collapse clause
  std::int64_t parallel_iterations = 1;  // distributed iteration space
  std::int64_t num_teams = 1;
  std::int64_t num_threads = 1;
  int loop_depth = 0;            // max loop nest depth in the kernel

  [[nodiscard]] double total_ops() const { return flops + int_ops + transcendental; }
  [[nodiscard]] double transfer_bytes() const {
    return transfer_to_bytes + transfer_from_bytes;
  }
};

/// Profiles the (single) kernel in a translation unit. `fallback_trip` is
/// used for loops whose bounds don't fold.
KernelProfile profile_kernel(const frontend::AstNode* translation_unit,
                             std::int64_t fallback_trip = 100);

}  // namespace pg::sim
