// AST walk that counts flops/loads/stores, measures footprints, and
// extracts parallel structure for the runtime model.
#include "sim/kernel_profile.hpp"

#include <algorithm>
#include <unordered_set>

#include "frontend/const_eval.hpp"
#include "frontend/loop_analysis.hpp"
#include "support/check.hpp"

namespace pg::sim {
namespace {

using frontend::AstNode;
using frontend::NodeKind;

bool is_transcendental_name(const std::string& name) {
  static const std::unordered_set<std::string> kNames = {
      "sqrt", "sqrtf", "exp", "expf", "log", "logf", "pow", "powf",
      "sin",  "sinf",  "cos", "cosf", "tan", "fabs", "fabsf", "atan",
      "atan2", "floor", "ceil", "round"};
  return kNames.contains(name);
}

const AstNode* strip(const AstNode* e) {
  while (e != nullptr &&
         (e->is(NodeKind::kParenExpr) || e->is(NodeKind::kImplicitCastExpr)))
    e = e->child(0);
  return e;
}

/// The declaration an lvalue expression ultimately names (array base).
const AstNode* base_decl(const AstNode* e) {
  e = strip(e);
  while (e != nullptr && e->is(NodeKind::kArraySubscriptExpr)) e = strip(e->child(0));
  if (e != nullptr && e->is(NodeKind::kDeclRefExpr)) return e->referenced_decl();
  return nullptr;
}

/// True when `expr` mentions `decl` anywhere.
bool mentions_decl(const AstNode* expr, const AstNode* decl) {
  bool found = false;
  frontend::walk(expr, [&](const AstNode* n, int) {
    if (n->is(NodeKind::kDeclRefExpr) && n->referenced_decl() == decl) found = true;
    return !found;
  });
  return found;
}

class Profiler {
 public:
  explicit Profiler(std::int64_t fallback_trip) : fallback_trip_(fallback_trip) {}

  KernelProfile run(const AstNode* tu) {
    check(tu != nullptr, "profile_kernel: null AST");
    walk_stmt(tu, 1.0, /*in_branch=*/false);
    finalize();
    return profile_;
  }

 private:
  void record_directive(const AstNode* directive) {
    profile_.has_directive = true;
    profile_.offload =
        directive->is(NodeKind::kOmpTargetTeamsDistributeParallelForDirective);
    for (const AstNode* clause : directive->children()) {
      switch (clause->kind()) {
        case NodeKind::kOmpCollapseClause: {
          auto v = frontend::evaluate_integer_constant(clause->child(0));
          profile_.collapse_depth = static_cast<int>(v.value_or(1));
          break;
        }
        case NodeKind::kOmpNumThreadsClause:
        case NodeKind::kOmpThreadLimitClause: {
          auto v = frontend::evaluate_integer_constant(clause->child(0));
          profile_.num_threads = v.value_or(1);
          break;
        }
        case NodeKind::kOmpNumTeamsClause: {
          auto v = frontend::evaluate_integer_constant(clause->child(0));
          profile_.num_teams = v.value_or(1);
          break;
        }
        case NodeKind::kOmpMapToClause:
        case NodeKind::kOmpMapFromClause:
        case NodeKind::kOmpMapTofromClause:
          record_map_clause(clause);
          break;
        default:
          break;
      }
    }
    // Distributed iteration space: the associated loop nest's first
    // collapse_depth levels.
    const AstNode* loop = directive->omp_body();
    std::int64_t iterations = 1;
    for (int level = 0; level < std::max(1, profile_.collapse_depth); ++level) {
      if (loop == nullptr || !loop->is(NodeKind::kForStmt)) break;
      iterations *= std::max<std::int64_t>(
          1, frontend::trip_count_or(loop, fallback_trip_));
      // Descend into a directly nested for (possibly inside a compound).
      const AstNode* body = loop->for_body();
      if (body->is(NodeKind::kCompoundStmt) && body->num_children() == 1)
        body = body->child(0);
      loop = body->is(NodeKind::kForStmt) ? body : nullptr;
    }
    profile_.parallel_iterations = iterations;
  }

  void record_map_clause(const AstNode* clause) {
    double bytes = 0.0;
    for (const AstNode* operand : clause->children()) {
      double elems = 0.0;
      std::size_t elem_size = 8;
      if (operand->is(NodeKind::kOmpArraySection)) {
        const AstNode* base = operand->child(0);
        if (base->referenced_decl() != nullptr)
          elem_size = base->referenced_decl()->type().element_size();
        // children: base, then (lower, length) pairs.
        double total = 1.0;
        for (std::size_t i = 2; i < operand->num_children(); i += 2) {
          auto len = frontend::evaluate_integer_constant(operand->child(i));
          total *= static_cast<double>(len.value_or(fallback_trip_));
        }
        elems = total;
      } else if (operand->is(NodeKind::kDeclRefExpr) &&
                 operand->referenced_decl() != nullptr) {
        const auto& type = operand->referenced_decl()->type();
        elem_size = type.element_size();
        const std::int64_t total = type.total_array_elements();
        elems = static_cast<double>(
            total == frontend::QualType::kUnknownExtent ? fallback_trip_ : total);
      }
      bytes += elems * static_cast<double>(elem_size);
    }
    if (clause->is(NodeKind::kOmpMapToClause)) profile_.transfer_to_bytes += bytes;
    if (clause->is(NodeKind::kOmpMapFromClause)) profile_.transfer_from_bytes += bytes;
    if (clause->is(NodeKind::kOmpMapTofromClause)) {
      profile_.transfer_to_bytes += bytes;
      profile_.transfer_from_bytes += bytes;
    }
  }

  /// Innermost enclosing loop's induction variable (for contiguity checks).
  [[nodiscard]] const AstNode* innermost_induction_var() const {
    return loop_ivs_.empty() ? nullptr : loop_ivs_.back();
  }

  void count_access(const AstNode* subscript, bool is_store, double mult) {
    const AstNode* decl = base_decl(subscript);
    std::size_t elem_size = 8;
    if (decl != nullptr) {
      elem_size = decl->type().element_size();
      if (touched_.insert(decl).second) {
        const std::int64_t elems = decl->type().total_array_elements();
        if (elems != frontend::QualType::kUnknownExtent && decl->type().is_array())
          profile_.footprint_bytes +=
              static_cast<double>(elems) * static_cast<double>(elem_size);
      }
    }
    if (is_store) profile_.stores += mult;
    else profile_.loads += mult;
    profile_.bytes_accessed += mult * static_cast<double>(elem_size);

    // Contiguity: the fastest-varying (last) index mentions the innermost
    // loop variable => unit stride.
    const AstNode* iv = innermost_induction_var();
    const AstNode* index = subscript->child(1);
    const bool contiguous = iv != nullptr && mentions_decl(index, iv);
    contiguous_weight_ += contiguous ? mult : 0.0;
    access_weight_ += mult;
  }

  void walk_expr(const AstNode* expr, double mult, bool is_store_target) {
    if (expr == nullptr) return;
    switch (expr->kind()) {
      case NodeKind::kBinaryOperator: {
        const std::string& op = expr->text();
        const bool assign = (op == "=");
        if (assign) {
          walk_expr(expr->child(0), mult, /*is_store_target=*/true);
          walk_expr(expr->child(1), mult, false);
          return;
        }
        walk_expr(expr->child(0), mult, false);
        walk_expr(expr->child(1), mult, false);
        if (op == "," || op == "&&" || op == "||") return;
        if (expr->type().is_floating()) profile_.flops += mult;
        else profile_.int_ops += mult;
        return;
      }
      case NodeKind::kCompoundAssignOperator: {
        // x op= e: read-modify-write.
        walk_expr(expr->child(0), mult, /*is_store_target=*/true);
        walk_expr(expr->child(0), mult, false);
        walk_expr(expr->child(1), mult, false);
        if (expr->type().is_floating()) profile_.flops += mult;
        else profile_.int_ops += mult;
        return;
      }
      case NodeKind::kUnaryOperator: {
        walk_expr(expr->child(0), mult, false);
        const std::string& op = expr->text();
        if (op == "-" || op == "+" || op == "~" || op == "!" ||
            op.starts_with("++") || op.starts_with("--")) {
          if (expr->type().is_floating()) profile_.flops += mult;
          else profile_.int_ops += mult;
        }
        return;
      }
      case NodeKind::kCallExpr: {
        const AstNode* callee = strip(expr->child(0));
        if (callee != nullptr && callee->is(NodeKind::kDeclRefExpr) &&
            is_transcendental_name(callee->text()))
          profile_.transcendental += mult;
        for (std::size_t i = 1; i < expr->num_children(); ++i)
          walk_expr(expr->child(i), mult, false);
        return;
      }
      case NodeKind::kArraySubscriptExpr: {
        count_access(expr, is_store_target, mult);
        // Index expressions are address arithmetic, not data accesses; we
        // still count their integer ops.
        const AstNode* base = strip(expr->child(0));
        if (base->is(NodeKind::kArraySubscriptExpr)) {
          // Multi-dim: the inner subscript is addressing, walk only indices.
          walk_expr(base->child(1), mult, false);
        }
        walk_expr(expr->child(1), mult, false);
        return;
      }
      case NodeKind::kConditionalOperator:
        walk_expr(expr->child(0), mult, false);
        walk_expr(expr->child(1), mult * 0.5, false);
        walk_expr(expr->child(2), mult * 0.5, false);
        return;
      default:
        for (const AstNode* child : expr->children())
          walk_expr(child, mult, is_store_target);
        return;
    }
  }

  void walk_stmt(const AstNode* stmt, double mult, bool in_branch) {
    if (stmt == nullptr) return;
    switch (stmt->kind()) {
      case NodeKind::kTranslationUnit:
      case NodeKind::kFunctionDecl:
      case NodeKind::kCompoundStmt:
        for (const AstNode* child : stmt->children())
          walk_stmt(child, mult, in_branch);
        return;
      case NodeKind::kOmpParallelForDirective:
      case NodeKind::kOmpTargetTeamsDistributeParallelForDirective:
        record_directive(stmt);
        walk_stmt(stmt->omp_body(), mult, in_branch);
        return;
      case NodeKind::kForStmt: {
        const double trips = static_cast<double>(
            std::max<std::int64_t>(1, frontend::trip_count_or(stmt, fallback_trip_)));
        profile_.loop_depth =
            std::max(profile_.loop_depth, static_cast<int>(loop_ivs_.size()) + 1);
        auto info = frontend::analyze_for_loop(stmt);
        loop_ivs_.push_back(info ? info->induction_var : nullptr);
        walk_stmt(stmt->for_init(), mult, in_branch);
        walk_expr(stmt->for_cond(), mult * trips, false);
        walk_stmt(stmt->for_body(), mult * trips, in_branch);
        walk_expr(stmt->for_inc(), mult * trips, false);
        loop_ivs_.pop_back();
        return;
      }
      case NodeKind::kWhileStmt:
      case NodeKind::kDoStmt: {
        const double trips = static_cast<double>(fallback_trip_);
        loop_ivs_.push_back(nullptr);
        for (const AstNode* child : stmt->children())
          walk_stmt(child, mult * trips, in_branch);
        loop_ivs_.pop_back();
        return;
      }
      case NodeKind::kIfStmt: {
        walk_expr(stmt->if_cond(), mult, false);
        const double before = profile_.total_ops() + profile_.loads + profile_.stores;
        walk_stmt(stmt->if_then(), mult * 0.5, true);
        if (stmt->if_else() != nullptr) walk_stmt(stmt->if_else(), mult * 0.5, true);
        const double after = profile_.total_ops() + profile_.loads + profile_.stores;
        branch_weight_ += after - before;
        return;
      }
      case NodeKind::kDeclStmt:
        for (const AstNode* var : stmt->children())
          if (var->num_children() == 1) walk_expr(var->child(0), mult, false);
        return;
      case NodeKind::kVarDecl:
        if (stmt->num_children() == 1) walk_expr(stmt->child(0), mult, false);
        return;
      case NodeKind::kReturnStmt:
        if (stmt->num_children() == 1) walk_expr(stmt->child(0), mult, false);
        return;
      case NodeKind::kBreakStmt:
      case NodeKind::kContinueStmt:
      case NodeKind::kNullStmt:
        return;
      default:
        // Expression statement.
        walk_expr(stmt, mult, false);
        return;
    }
  }

  void finalize() {
    const double total_work =
        profile_.total_ops() + profile_.loads + profile_.stores;
    profile_.branch_fraction =
        total_work > 0.0 ? std::clamp(branch_weight_ / total_work, 0.0, 1.0) : 0.0;
    profile_.contiguous_fraction =
        access_weight_ > 0.0 ? contiguous_weight_ / access_weight_ : 1.0;
  }

  KernelProfile profile_;
  std::int64_t fallback_trip_;
  std::vector<const AstNode*> loop_ivs_;
  std::unordered_set<const AstNode*> touched_;
  double contiguous_weight_ = 0.0;
  double access_weight_ = 0.0;
  double branch_weight_ = 0.0;
};

}  // namespace

KernelProfile profile_kernel(const frontend::AstNode* translation_unit,
                             std::int64_t fallback_trip) {
  Profiler profiler(fallback_trip);
  return profiler.run(translation_unit);
}

}  // namespace pg::sim
