// Roofline-flavoured analytical runtime: compute vs bandwidth bound with
// cache, launch-overhead, and scaling-efficiency corrections.
#include "sim/runtime_simulator.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace pg::sim {
namespace {

/// CPU parallel efficiency: mild synchronisation/NUMA degradation per core.
double cpu_efficiency(int workers) {
  return 1.0 / (1.0 + 0.015 * static_cast<double>(workers - 1));
}

/// CPU memory bandwidth saturation: a few cores saturate the controllers.
double cpu_bw_fraction(int workers, double single_core_fraction) {
  const double w = static_cast<double>(workers);
  const double saturating = w / (w + 3.0) / (1.0 / (1.0 + 3.0));  // =1 at w=1
  return std::min(1.0, single_core_fraction * saturating * 4.0);
}

/// CPU cache effect: footprints inside the LLC skip most DRAM traffic.
double cache_traffic_factor(double footprint_bytes, double cache_mb) {
  const double cache_bytes = cache_mb * 1024.0 * 1024.0;
  if (footprint_bytes <= 0.0) return 1.0;
  if (footprint_bytes <= cache_bytes) return 0.15;
  if (footprint_bytes >= 8.0 * cache_bytes) return 1.0;
  // Smooth ramp between 1x and 8x the cache size.
  const double t = (footprint_bytes - cache_bytes) / (7.0 * cache_bytes);
  return 0.15 + 0.85 * t;
}

double cpu_runtime_us(const KernelProfile& p, const Platform& m,
                      const SimOptions& opt) {
  const int requested = static_cast<int>(std::max<std::int64_t>(1, p.num_threads));
  const int workers = std::min(requested, m.cores);

  const double effective_flops =
      p.flops + 0.5 * p.int_ops + opt.transcendental_flops_cpu * p.transcendental;
  const double per_core = m.clock_ghz * 1e9 * m.flops_per_cycle_per_core;
  const double compute_s = effective_flops /
                           (per_core * workers * cpu_efficiency(workers));

  const double traffic =
      p.bytes_accessed * cache_traffic_factor(p.footprint_bytes, m.cache_mb);
  const double stride_derate = 1.0 + 2.5 * (1.0 - p.contiguous_fraction);
  const double bw = m.dram_bandwidth_gbs * 1e9 *
                    cpu_bw_fraction(workers, m.single_core_bw_fraction) /
                    stride_derate;
  const double memory_s = traffic / bw;

  // Load imbalance of the statically scheduled distributed loop.
  double imbalance = 1.0;
  if (p.has_directive && p.parallel_iterations > 0) {
    const double chunks = std::ceil(static_cast<double>(p.parallel_iterations) /
                                    static_cast<double>(workers));
    imbalance = chunks * workers / static_cast<double>(p.parallel_iterations);
    imbalance = std::min(imbalance, static_cast<double>(workers));
  }

  const double branch_derate = 1.0 + 0.12 * p.branch_fraction;
  double time_s = std::max(compute_s, memory_s) * imbalance * branch_derate;
  if (p.has_directive && workers > 1)
    time_s += m.fork_join_us * 1e-6 * std::log2(static_cast<double>(workers) + 1.0);
  return time_s * 1e6;
}

double gpu_runtime_us(const KernelProfile& p, const Platform& m,
                      const SimOptions& opt) {
  const double teams = static_cast<double>(std::max<std::int64_t>(1, p.num_teams));
  const double threads =
      static_cast<double>(std::max<std::int64_t>(1, p.num_threads));

  // Concurrency: how many lanes the launch + iteration space can fill.
  const double iterations =
      static_cast<double>(std::max<std::int64_t>(1, p.parallel_iterations));
  const double launch_lanes = teams * std::min(threads, 1024.0);
  const double concurrency = std::min(iterations, launch_lanes);

  // SM/CU-level utilisation: few teams leave whole SMs idle.
  const double sm_util = std::min(1.0, teams / static_cast<double>(m.cores));
  const double lane_util = std::min(1.0, concurrency / m.total_lanes());
  const double occupancy = std::max(0.25 * lane_util + 0.75 * lane_util * sm_util,
                                    1.0 / m.total_lanes());

  const double effective_flops =
      p.flops + 0.6 * p.int_ops + opt.transcendental_flops_gpu * p.transcendental;
  const double branch_derate = 1.0 + 0.9 * p.branch_fraction;  // warp divergence
  const double compute_s =
      effective_flops * branch_derate / (m.peak_flops() * occupancy);

  const double stride_derate = 1.0 + 6.0 * (1.0 - p.contiguous_fraction);
  const double bw_util = std::min(1.0, concurrency / (0.5 * m.total_lanes()));
  const double bw = m.dram_bandwidth_gbs * 1e9 * std::max(bw_util, 0.02) /
                    stride_derate;
  const double memory_s = p.bytes_accessed / bw;

  double time_s = std::max(compute_s, memory_s);
  time_s += m.kernel_launch_us * 1e-6;

  if (p.transfer_bytes() > 0.0) {
    const double xfer_bw = m.transfer_bandwidth_gbs * 1e9;
    time_s += p.transfer_bytes() / xfer_bw + 2.0 * m.transfer_latency_us * 1e-6;
  }
  return time_s * 1e6;
}

}  // namespace

double simulate_runtime_us(const KernelProfile& profile, const Platform& platform,
                           const SimOptions& options) {
  const double time_us = platform.kind == DeviceKind::kCpu
                             ? cpu_runtime_us(profile, platform, options)
                             : gpu_runtime_us(profile, platform, options);
  return std::max(time_us, options.timer_floor_us);
}

double measure_runtime_us(const KernelProfile& profile, const Platform& platform,
                          pg::Rng& rng, const SimOptions& options) {
  const double base = simulate_runtime_us(profile, platform, options);
  const double jitter =
      options.noise_sigma > 0.0 ? rng.lognormal_jitter(options.noise_sigma) : 1.0;
  return std::max(base * jitter, options.timer_floor_us);
}

}  // namespace pg::sim
