// Analytical runtime model — the stand-in for running kernels on Summit and
// Corona (paper §IV-A.3, "Runtime Collection").
//
// Roofline core: time = max(compute_time, memory_time) + overheads, where
//  * compute throughput scales with the configured parallelism, derated by
//    parallel efficiency (CPU) or occupancy (GPU) and branch divergence;
//  * memory time uses the DRAM bandwidth, derated for strided access and —
//    on CPUs — boosted when the footprint fits in cache;
//  * GPUs pay a kernel-launch overhead per offload and, for the *_mem
//    variants, host<->device transfer time from the map clauses;
//  * CPUs pay a fork/join overhead and a load-imbalance factor when the
//    distributed iteration count does not divide evenly.
// A lognormal multiplicative jitter models measurement noise (the paper
// measured with gettimeofday around the kernel).
#pragma once

#include "sim/kernel_profile.hpp"
#include "sim/platform.hpp"
#include "support/rng.hpp"

namespace pg::sim {

struct SimOptions {
  /// Log-stddev of the multiplicative measurement jitter; 0 disables noise.
  double noise_sigma = 0.035;
  /// Timer quantisation floor (gettimeofday has ~ microsecond resolution).
  double timer_floor_us = 1.0;
  /// Cost (in equivalent flops) of one transcendental call.
  double transcendental_flops_cpu = 35.0;
  double transcendental_flops_gpu = 12.0;
};

/// Deterministic (noise-free) runtime in microseconds.
double simulate_runtime_us(const KernelProfile& profile, const Platform& platform,
                           const SimOptions& options = {});

/// Runtime with measurement jitter drawn from `rng`.
double measure_runtime_us(const KernelProfile& profile, const Platform& platform,
                          pg::Rng& rng, const SimOptions& options = {});

}  // namespace pg::sim
