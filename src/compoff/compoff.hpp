// COMPOFF baseline (Mishra et al., IPDPSW'22): a portable *static* cost
// model that predicts OpenMP offloading runtime from hand-engineered
// operation counts fed to a fully-connected feed-forward network (MLP).
//
// Feature vector — raw operation counts, per COMPOFF's "number of
// operations contained within a kernel" design:
//   [ flops, int_ops, transcendental, loads+stores, transfer bytes,
//     loop_depth, parallel iterations, collapse_depth ]
// Each feature and the target are MinMax-scaled.
//
// Two deliberate fidelity choices (both of which the ParaGraph paper calls
// out as COMPOFF's limitations):
//  * raw (not log) counts — after MinMax scaling, kernels orders of
//    magnitude below the sweep maximum compress toward the feature-space
//    origin, the small-kernel weakness of Figs. 8/9;
//  * NO launch-configuration features — COMPOFF is a per-kernel static cost
//    model; the paper's ParaGraph pipeline explicitly adds num_teams /
//    num_threads as extra features, and that difference is part of the gap
//    the comparison demonstrates.
// As in the paper, COMPOFF only models GPU execution (its CPU gap is
// ParaGraph's other headline advantage).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "dataset/generator.hpp"
#include "nn/mlp.hpp"
#include "nn/scaler.hpp"
#include "tensor/workspace.hpp"

namespace pg::compoff {

constexpr std::size_t kNumFeatures = 8;

/// Raw (unscaled) feature vector for one kernel instance.
std::array<double, kNumFeatures> extract_features(
    const dataset::RawDataPoint& point);

struct CompoffConfig {
  std::vector<std::size_t> hidden = {64, 64};
  int epochs = 400;
  int batch_size = 64;
  double learning_rate = 1e-3;
  std::uint64_t seed = 77;
  double validation_fraction = 0.1;
  std::uint64_t split_seed = 13;  // match ParaGraph's split for comparability
};

/// Trained COMPOFF model with its scalers.
class CompoffModel {
 public:
  CompoffModel(const CompoffConfig& config, std::size_t num_features);

  /// Trains on the points' features/runtimes; returns per-epoch train MSE.
  std::vector<double> train(const std::vector<dataset::RawDataPoint>& train_points);

  /// Predicted runtime in microseconds (clamped to the observed minimum).
  [[nodiscard]] double predict_us(const dataset::RawDataPoint& point) const;

  /// Batched predictions through the per-thread workspace pool
  /// (OpenMP-parallel; out.size() must equal points.size()).
  void predict_batch_us(std::span<const dataset::RawDataPoint> points,
                        std::span<double> out);

 private:
  double predict_us(const dataset::RawDataPoint& point,
                    tensor::Workspace& ws) const;

  CompoffConfig config_;
  nn::Mlp mlp_;
  std::vector<nn::MinMaxScaler> feature_scalers_;
  nn::MinMaxScaler target_scaler_;
  std::vector<tensor::Workspace> ws_pool_;  // one per OpenMP thread
  bool trained_ = false;
};

/// Convenience: 9:1 split + train + validation predictions, mirroring the
/// ParaGraph pipeline so Figs. 8/9 compare like for like.
struct CompoffEvaluation {
  std::vector<double> actual_us;       // validation ground truth
  std::vector<double> predicted_us;    // validation predictions
  double rmse_us = 0.0;
  double norm_rmse = 0.0;
};

CompoffEvaluation train_and_evaluate(
    const std::vector<dataset::RawDataPoint>& points, const CompoffConfig& config);

}  // namespace pg::compoff
