// COMPOFF implementation: hand-picked static kernel features and the small
// per-device regression fitted on them (the paper's non-GNN baseline).
#include "compoff/compoff.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "nn/adam.hpp"
#include "nn/loss.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace pg::compoff {

std::array<double, kNumFeatures> extract_features(
    const dataset::RawDataPoint& point) {
  const sim::KernelProfile& p = point.profile;
  return {
      p.flops,
      p.int_ops,
      p.transcendental,
      p.loads + p.stores,
      p.transfer_bytes(),
      static_cast<double>(p.loop_depth),
      static_cast<double>(p.parallel_iterations),
      static_cast<double>(p.collapse_depth),
  };
}

CompoffModel::CompoffModel(const CompoffConfig& config, std::size_t num_features)
    : config_(config), mlp_([&] {
        std::vector<std::size_t> sizes;
        sizes.push_back(num_features);
        for (std::size_t h : config.hidden) sizes.push_back(h);
        sizes.push_back(1);
        pg::Rng rng(config.seed);
        return nn::Mlp(sizes, rng);
      }()),
      ws_pool_(static_cast<std::size_t>(omp_get_max_threads())) {
  feature_scalers_.resize(num_features);
}

std::vector<double> CompoffModel::train(
    const std::vector<dataset::RawDataPoint>& train_points) {
  check(!train_points.empty(), "CompoffModel::train: empty training set");

  // Fit scalers.
  std::vector<std::array<double, kNumFeatures>> features;
  std::vector<double> targets;
  features.reserve(train_points.size());
  for (const auto& point : train_points) {
    features.push_back(extract_features(point));
    targets.push_back(point.runtime_us);
  }
  for (std::size_t f = 0; f < kNumFeatures; ++f) {
    std::vector<double> column(features.size());
    for (std::size_t i = 0; i < features.size(); ++i) column[i] = features[i][f];
    feature_scalers_[f].fit(column);
  }
  target_scaler_.fit(targets);

  nn::AdamConfig adam_config;
  adam_config.learning_rate = config_.learning_rate;
  nn::Adam adam(mlp_.parameters(), adam_config);
  std::vector<tensor::Matrix> grads = adam.make_gradient_buffer();

  std::vector<std::size_t> order(train_points.size());
  std::iota(order.begin(), order.end(), 0);
  pg::Rng shuffle_rng(config_.seed + 1);

  std::vector<double> epoch_losses;
  epoch_losses.reserve(config_.epochs);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double epoch_loss = 0.0;
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(config_.batch_size)) {
      const std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(config_.batch_size));

      // Dense batch: rows = samples.
      tensor::Matrix x(end - start, kNumFeatures);
      std::vector<double> y(end - start);
      for (std::size_t i = start; i < end; ++i) {
        const auto& f = features[order[i]];
        for (std::size_t c = 0; c < kNumFeatures; ++c)
          x(i - start, c) = static_cast<float>(feature_scalers_[c].transform(f[c]));
        y[i - start] = target_scaler_.transform(targets[order[i]]);
      }

      nn::Mlp::Cache cache;
      tensor::Matrix pred = mlp_.forward(x, cache);
      tensor::Matrix dpred(pred.rows(), 1);
      const double inv_batch = 1.0 / static_cast<double>(pred.rows());
      for (std::size_t i = 0; i < pred.rows(); ++i) {
        const double p = pred(i, 0);
        epoch_loss += nn::mse_loss(p, y[i]);
        dpred(i, 0) = static_cast<float>(nn::mse_grad(p, y[i]) * inv_batch);
      }
      (void)mlp_.backward(dpred, cache, grads);
      adam.step(grads);
      for (auto& g : grads) g.zero();
    }
    epoch_losses.push_back(epoch_loss / static_cast<double>(order.size()));
  }
  trained_ = true;
  return epoch_losses;
}

double CompoffModel::predict_us(const dataset::RawDataPoint& point) const {
  thread_local tensor::Workspace ws;
  return predict_us(point, ws);
}

double CompoffModel::predict_us(const dataset::RawDataPoint& point,
                                tensor::Workspace& ws) const {
  check(trained_, "CompoffModel::predict_us before train");
  ws.reset();
  const auto f = extract_features(point);
  tensor::Matrix& x = ws.acquire(1, kNumFeatures);
  for (std::size_t c = 0; c < kNumFeatures; ++c)
    x(0, c) = static_cast<float>(feature_scalers_[c].transform(f[c]));
  const double scaled = mlp_.forward(x, ws)(0, 0);
  // Clamp only at the physical floor. Small kernels sit at ~0 in COMPOFF's
  // MinMax-scaled count features, so the MLP extrapolates there — the
  // small-runtime weakness the paper's Fig. 8 shows.
  return std::max(target_scaler_.inverse(scaled), 0.0);
}

void CompoffModel::predict_batch_us(std::span<const dataset::RawDataPoint> points,
                                    std::span<double> out) {
  check(points.size() == out.size(),
        "CompoffModel::predict_batch_us: span length mismatch");
  auto thread_ws = [this]() -> tensor::Workspace& {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    check(tid < ws_pool_.size(), "CompoffModel: thread id exceeds pool");
    return ws_pool_[tid];
  };
  if (omp_in_parallel()) {
    for (std::size_t i = 0; i < points.size(); ++i)
      out[i] = predict_us(points[i], thread_ws());
    return;
  }
#pragma omp parallel for schedule(dynamic, 16)
  for (std::size_t i = 0; i < points.size(); ++i)
    out[i] = predict_us(points[i], thread_ws());
}

CompoffEvaluation train_and_evaluate(
    const std::vector<dataset::RawDataPoint>& points,
    const CompoffConfig& config) {
  check(points.size() >= 10, "COMPOFF evaluation needs a non-trivial dataset");

  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), 0);
  pg::Rng rng(config.split_seed);
  rng.shuffle(order);
  const std::size_t val_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(points.size()) *
                                  config.validation_fraction));
  const std::size_t train_count = points.size() - val_count;

  std::vector<dataset::RawDataPoint> train_points;
  train_points.reserve(train_count);
  for (std::size_t k = 0; k < train_count; ++k)
    train_points.push_back(points[order[k]]);

  CompoffModel model(config, kNumFeatures);
  model.train(train_points);

  CompoffEvaluation eval;
  std::vector<dataset::RawDataPoint> val_points;
  val_points.reserve(points.size() - train_count);
  for (std::size_t k = train_count; k < points.size(); ++k) {
    const auto& point = points[order[k]];
    val_points.push_back(point);
    eval.actual_us.push_back(point.runtime_us);
  }
  eval.predicted_us.resize(val_points.size());
  model.predict_batch_us(val_points, eval.predicted_us);
  eval.rmse_us = stats::rmse(eval.actual_us, eval.predicted_us);
  const double range = stats::max(eval.actual_us) - stats::min(eval.actual_us);
  eval.norm_rmse = range > 0.0 ? eval.rmse_us / range : 0.0;
  return eval;
}

}  // namespace pg::compoff
